"""Reconstructions of the paper's worked examples (Figures 1, 2, 14, 15, 17).

The paper illustrates each phenomenon — protocol downgrade attacks, BGP
wedgies, collateral damages and benefits — with a small subgraph of the
real Internet.  The figures only sketch the edges, so each gadget here is
a *reconstruction*: it uses the paper's ASNs and reproduces the narrated
route choices exactly (verified in ``tests/test_gadgets.py``), but the
precise relationship set is inferred from the prose.

Every gadget ships with the deployment set the paper's story uses, so it
can be fed straight into :func:`repro.core.routing.compute_routing_outcome`
or the message-passing simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .graph import ASGraph, graph_from_edges

#: ASN used for the paper's anonymized attackers.  Deliberately small so
#: that the deterministic lowest-next-hop-ASN tiebreak favors the
#: attacker, matching the paper's "tiebreaks in favor of the attacker"
#: narration in Figure 15.
DEFAULT_ATTACKER_ASN = 666


@dataclass(frozen=True)
class Gadget:
    """A worked example: topology plus the paper's scenario parameters."""

    name: str
    graph: ASGraph
    destination: int
    attacker: int | None
    #: the set S of secure ASes used by the paper's narration.
    secure: frozenset[int]
    #: human-readable role of each named AS.
    roles: dict[int, str] = field(default_factory=dict)


def figure2_protocol_downgrade() -> Gadget:
    """Figure 2: the protocol downgrade attack on a Tier 1 destination.

    Under normal conditions webhoster AS 21740 uses a secure 1-hop
    provider route to Level 3 (AS 3356).  It has no peer route via Cogent
    (AS 174) because 174's own route to 3356 is a peer route, which ``Ex``
    forbids exporting to a peer.  During the attack, m announces "m 3356";
    AS 3491 (a customer of 174) hands 174 a bogus *customer* route, which
    174 prefers to its legitimate peer route (LP) and exports to everyone.
    AS 21740 then sees a 4-hop *peer* route which — when security is 2nd
    or 3rd — beats its secure *provider* route, so it downgrades.
    AS 3536 (DoD NIC) is a single-homed stub of 3356 and is immune.
    """
    m = DEFAULT_ATTACKER_ASN
    graph = graph_from_edges(
        customer_provider=[
            (21740, 3356),  # webhoster buys transit from Level 3
            (3536, 3356),  # DoD NIC, single-homed stub of Level 3
            (3491, 174),  # PCCW is a customer of Cogent
            (m, 3491),  # the attacker hangs off PCCW
        ],
        peerings=[
            (21740, 174),
            (174, 3356),  # Tier-1 peering
        ],
    )
    return Gadget(
        name="figure2",
        graph=graph,
        destination=3356,
        attacker=m,
        secure=frozenset({3356, 21740, 3536}),
        roles={
            3356: "Level 3 (Tier 1) — the victim destination",
            21740: "eNom webhoster — suffers the protocol downgrade",
            174: "Cogent — doomed when security is 2nd/3rd",
            3491: "PCCW — transits the bogus announcement",
            3536: "DoD NIC — immune single-homed stub",
            m: "attacker announcing 'm 3356' via legacy BGP",
        },
    )


def figure1_wedgie() -> Gadget:
    """Figure 1: the S*BGP Wedgie caused by *inconsistent* security placement.

    All ASes except AS 8928 are secure.  The Swedish ISP AS 29518 places
    security *below* LP (security 3rd); the Norwegian ISP AS 31283 places
    it above everything (security 1st).  In the intended state 31283 uses
    the secure provider route (29518 31027 3).  After the 31027-3 link
    fails and recovers, 29518 is stuck preferring the insecure *customer*
    route learned via 31283, 31283 never re-learns the secure provider
    route, and the system cannot return to the intended state.

    The per-AS policy assignment lives with the experiment
    (:mod:`repro.experiments.exp_wedgie`); this gadget is the topology.
    """
    graph = graph_from_edges(
        customer_provider=[
            (3, 31027),  # MIT buys transit from Nianet
            (3, 8928),  # ... and from the (insecure) AS 8928
            (8928, 34226),
            (34226, 31283),
            (31283, 29518),  # Norwegian ISP is a customer of the Swedish ISP
        ],
        peerings=[(31027, 29518)],
    )
    return Gadget(
        name="figure1",
        graph=graph,
        destination=3,
        attacker=None,
        secure=frozenset({3, 31027, 29518, 31283, 34226}),
        roles={
            3: "MIT — the destination",
            8928: "the only insecure AS",
            29518: "Swedish ISP — prioritizes security below LP",
            31283: "Norwegian ISP — prioritizes security 1st",
            31027: "Nianet — peers with 29518",
            34226: "Hungarian network",
        },
    )


def figure14_collateral(attacker: int = DEFAULT_ATTACKER_ASN) -> Gadget:
    """Figure 14: collateral damage (AS 52142) and benefit (AS 5166), sec 2nd.

    Before deployment, Polish ISP AS 52142 picks its 3-hop legitimate
    provider route (5617 3356 40426) over the 5-hop bogus route via
    AS 12389.  After {5617, 174, 3491, 20960, 10310, 40426} deploy S*BGP,
    AS 5617 (security 2nd) switches to a 5-hop *secure* provider route via
    Cogent, so insecure AS 52142 now compares a 6-hop legitimate route to
    the 5-hop bogus one and falls to the attacker: collateral damage.
    Meanwhile AS 3491 switches off its bogus customer route onto a secure
    customer route, which rescues Cogent (174) and, transitively, the
    insecure DoD AS 5166: collateral benefit.  AS 10310 (Yahoo) is immune:
    its 1-hop customer route always beats a bogus provider route.
    """
    m = attacker
    graph = graph_from_edges(
        customer_provider=[
            (40426, 10310),  # Pandora buys from Yahoo
            (40426, 3356),  # ... and from Level 3
            (10310, 20960),
            (10310, 7922),  # Yahoo's other provider hears the bogus route
            (20960, 3491),
            (3491, 174),
            (m, 3491),  # the attacker hangs off PCCW ...
            (m, 7922),  # ... and off Comcast
            (5617, 3356),
            (5617, 174),
            (52142, 5617),
            (52142, 12389),
            (12389, 3257),
            (5166, 174),
        ],
        peerings=[(3257, 7922)],
    )
    return Gadget(
        name="figure14",
        graph=graph,
        destination=40426,
        attacker=m,
        secure=frozenset({5617, 174, 3491, 20960, 10310, 40426}),
        roles={
            40426: "Pandora — the victim destination",
            52142: "Polish ISP — collateral damage (security 2nd)",
            5617: "Telekomunikacja Polska — switches to the long secure route",
            174: "Cogent — rescued by 3491's secure route",
            5166: "DoD NIC — collateral benefit",
            3491: "PCCW — chooses bogus pre-deployment, secure post",
            10310: "Yahoo — immune",
            m: "attacker (anonymized Tier 2)",
        },
    )


def figure15_collateral_benefit(attacker: int = DEFAULT_ATTACKER_ASN) -> Gadget:
    """Figure 15: collateral benefit in the security 3rd model.

    AS 3267 learns two equal-length peer routes: a legitimate one via
    Yahoo (10310) and the bogus one directly from the attacker.  Its
    tiebreak favors the attacker, so its customers AS 34223 and AS 12389
    are unhappy.  Once {3267, 10310, 40426} are secure, the legitimate
    route is secure and security-3rd prefers it *before* the tiebreak, so
    the insecure customers become happy: a collateral benefit, in the one
    model where collateral damage is impossible (Theorem 6.1).
    """
    m = attacker
    graph = graph_from_edges(
        customer_provider=[
            (40426, 10310),
            (34223, 3267),
            (12389, 3267),
            (m, 7922),
        ],
        peerings=[
            (3267, 10310),
            (3267, m),
            (3267, 7922),
        ],
    )
    return Gadget(
        name="figure15",
        graph=graph,
        destination=40426,
        attacker=m,
        secure=frozenset({3267, 10310, 40426}),
        roles={
            40426: "Pandora — the victim destination",
            3267: "Russian state institute ISP — tiebreaks toward the attacker",
            34223: "ZAO N-Region — collateral benefit",
            12389: "Rostelecom — collateral benefit",
            10310: "Yahoo — transit for the legitimate peer route",
            m: "attacker",
        },
    )


def figure17_collateral_damage_sec1st(
    attacker: int = DEFAULT_ATTACKER_ASN,
) -> Gadget:
    """Figure 17 (Appendix A): collateral damage in the *security 1st* model.

    Pre-deployment, Orange Oceania (AS 4805) uses the legitimate peer
    route via Optus (AS 7474) and avoids the bogus provider route via
    AS 2647.  Post-deployment, Optus — security 1st — abandons its
    insecure customer route for a secure *provider* route via AS 7473;
    ``Ex`` forbids exporting a provider route to a peer, so AS 4805 loses
    its legitimate route entirely and falls to the attacker.
    """
    m = attacker
    graph = graph_from_edges(
        customer_provider=[
            (40426, 10310),
            (40426, 10026),
            (10310, 7473),
            (10026, 17477),
            (17477, 7474),
            (7474, 7473),
            (4805, 2647),
            (m, 2647),
        ],
        peerings=[(4805, 7474)],
    )
    return Gadget(
        name="figure17",
        graph=graph,
        destination=40426,
        attacker=m,
        secure=frozenset({7474, 7473, 10310, 40426}),
        roles={
            40426: "the victim destination",
            4805: "Orange Oceania — collateral damage (security 1st)",
            7474: "Optus — switches to a secure provider route",
            7473: "Optus's provider — on the secure chain",
            2647: "provider transiting only the bogus route",
            17477: "Optus's customer chain (insecure)",
            10026: "Optus's customer chain (insecure)",
            10310: "Yahoo — on the secure chain",
            m: "attacker",
        },
    )


ALL_GADGETS = {
    "figure1": figure1_wedgie,
    "figure2": figure2_protocol_downgrade,
    "figure14": figure14_collateral,
    "figure15": figure15_collateral_benefit,
    "figure17": figure17_collateral_damage_sec1st,
}
