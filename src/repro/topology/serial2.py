"""CAIDA *serial-2* AS-relationship file format.

The paper's UCLA/Cyclops topology is conventionally distributed in the
CAIDA relationship format::

    # comment lines start with '#'
    <provider-asn>|<customer-asn>|-1
    <peer-asn>|<peer-asn>|0

This module reads and writes that format so that users with access to a
real AS-relationship snapshot (CAIDA serial-2, UCLA Cyclops export) can
run every experiment on it instead of the synthetic graph.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO

from .graph import ASGraph


class Serial2FormatError(ValueError):
    """Raised on malformed serial-2 input."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_number}: {reason}: {line!r}")
        self.line_number = line_number
        self.line = line
        self.reason = reason


def parse_serial2(lines: Iterable[str], strict: bool = True) -> ASGraph:
    """Parse serial-2 lines into an :class:`ASGraph`.

    Args:
        lines: an iterable of text lines (a file object works).
        strict: if True, malformed lines and duplicate edges raise
            :class:`Serial2FormatError`; if False they are skipped.

    Returns:
        The parsed graph (not preprocessed; see
        :mod:`repro.topology.preprocess`).
    """
    graph = ASGraph()
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) < 3:
            if strict:
                raise Serial2FormatError(number, line, "expected a|b|rel")
            continue
        try:
            a, c, rel = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError:
            if strict:
                raise Serial2FormatError(number, line, "non-integer field")
            continue
        try:
            if rel == -1:
                # serial-2 convention: <provider>|<customer>|-1
                graph.add_customer_provider(customer=c, provider=a)
            elif rel == 0:
                graph.add_peering(a, c)
            else:
                if strict:
                    raise Serial2FormatError(
                        number, line, f"unsupported relationship code {rel}"
                    )
        except ValueError as exc:
            if isinstance(exc, Serial2FormatError):
                raise
            if strict:
                raise Serial2FormatError(number, line, str(exc)) from exc
    return graph


def load_serial2(path: str | Path, strict: bool = True) -> ASGraph:
    """Load a serial-2 file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_serial2(handle, strict=strict)


def write_serial2(graph: ASGraph, out: TextIO, header: str | None = None) -> None:
    """Write ``graph`` in serial-2 format to a text stream."""
    if header:
        for line in header.splitlines():
            out.write(f"# {line}\n")
    for asn in graph.asns:
        for provider in sorted(graph.providers(asn)):
            out.write(f"{provider}|{asn}|-1\n")
        for peer in sorted(graph.peers(asn)):
            if asn < peer:
                out.write(f"{asn}|{peer}|0\n")


def dump_serial2(graph: ASGraph, path: str | Path, header: str | None = None) -> None:
    """Write ``graph`` in serial-2 format to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        write_serial2(graph, handle, header=header)


def dumps_serial2(graph: ASGraph, header: str | None = None) -> str:
    """Return the serial-2 text for ``graph``."""
    buffer = io.StringIO()
    write_serial2(graph, buffer, header=header)
    return buffer.getvalue()
