"""Doomed / protectable / immune partitions (Section 4.3, Appendix E).

For a fixed attacker/destination pair ``(m, d)``, every source AS falls
into exactly one of three categories *independently of which ASes deploy
S*BGP*:

* **doomed** — routes through the attacker for every secure set ``S``;
* **immune** — routes to the legitimate destination for every ``S``;
* **protectable** — its fate depends on ``S``.

Averaging the immune (resp. non-doomed) fractions over pairs gives the
deployment-invariant lower (resp. upper) bounds on the security metric
of Section 4.4 — the paper's Figure 3 family.

The computation follows Appendix E exactly:

* **security 3rd** (Corollary E.1): the best route's class *and length*
  are deployment-invariant, so classify by the endpoints of the
  baseline (``S = ∅``) BPR set;
* **security 2nd** (Corollary E.2): only the best route's *class* is
  invariant, so classify by the endpoints of every same-class route
  that *survives* the FixRoutes pruning — i.e. routes through fixed
  neighbors whose own BPR sets still offer them.  (A static
  perceivable-route closure is not enough: a stub whose providers are
  all doomed can only ever learn bogus routes, which is exactly why
  most sources are doomed when a Tier 1 is attacked, §4.6);
* **security 1st** (Observations E.3/E.4): doomed iff every perceivable
  route leads to the attacker; immune iff none does; the paper treats
  everything else (≈ all ASes) as protectable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..topology.graph import ASGraph
from ..topology.relationships import RouteClass
from .perceivable import AttackCloseures, attack_closures
from .rank import BASELINE, RankModel, SecurityModel
from .routing import Reach, RoutingContext, RoutingOutcome, compute_routing_outcome


class Category(enum.Enum):
    """Deployment-invariant fate of a source AS (Table 2)."""

    DOOMED = "doomed"
    PROTECTABLE = "protectable"
    IMMUNE = "immune"
    #: no perceivable route to either endpoint (disconnected inputs only).
    DISCONNECTED = "disconnected"


@dataclass(frozen=True)
class PartitionCounts:
    """Aggregate partition sizes for one (m, d) pair."""

    doomed: int
    protectable: int
    immune: int
    disconnected: int

    @property
    def total(self) -> int:
        return self.doomed + self.protectable + self.immune + self.disconnected

    def fractions(self) -> tuple[float, float, float]:
        """(doomed, protectable, immune) as fractions of all sources."""
        total = self.total
        if total == 0:
            return (0.0, 0.0, 0.0)
        return (
            self.doomed / total,
            self.protectable / total,
            self.immune / total,
        )


@dataclass
class PartitionResult:
    """Per-source categories for one attacker/destination pair."""

    attacker: int
    destination: int
    model: RankModel
    category_of: dict[int, Category]

    def counts(self) -> PartitionCounts:
        doomed = protectable = immune = disconnected = 0
        for category in self.category_of.values():
            if category is Category.DOOMED:
                doomed += 1
            elif category is Category.PROTECTABLE:
                protectable += 1
            elif category is Category.IMMUNE:
                immune += 1
            else:
                disconnected += 1
        return PartitionCounts(doomed, protectable, immune, disconnected)

    def members(self, category: Category) -> frozenset[int]:
        return frozenset(
            asn for asn, cat in self.category_of.items() if cat is category
        )


def compute_partitions(
    topology: ASGraph | RoutingContext,
    attacker: int,
    destination: int,
    model: RankModel,
    baseline_outcome: RoutingOutcome | None = None,
    closures: AttackCloseures | None = None,
) -> PartitionResult:
    """Partition all sources for ``(m, d)`` under the given model.

    Args:
        topology: graph or prebuilt context.
        attacker: the attacking AS ``m``.
        destination: the victim AS ``d``.
        model: one of the three security models (the baseline model has
            no protectable ASes by definition and is rejected).
        baseline_outcome: optional precomputed ``S = ∅`` attack outcome
            for this pair (shared across models — with no secure AS all
            models coincide).
        closures: optional precomputed perceivable closures for the pair.

    Returns:
        A :class:`PartitionResult`.
    """
    if model.model is SecurityModel.BASELINE:
        raise ValueError("partitions are defined for the three security models")
    ctx = topology if isinstance(topology, RoutingContext) else RoutingContext(topology)

    if model.model is SecurityModel.THIRD:
        outcome = baseline_outcome or compute_routing_outcome(
            ctx,
            destination,
            attacker=attacker,
            model=RankModel(SecurityModel.BASELINE, model.local_preference),
        )
        return _partitions_from_bpr_endpoints(ctx, outcome, model)

    if model.model is SecurityModel.SECOND:
        outcome = baseline_outcome or compute_routing_outcome(
            ctx,
            destination,
            attacker=attacker,
            model=RankModel(SecurityModel.BASELINE, model.local_preference),
        )
        return _partitions_security_second(ctx, outcome, model)
    closures = closures or attack_closures(ctx, attacker, destination)
    return _partitions_security_first(ctx, attacker, destination, closures, model)


_CATEGORY_OF_REACH = {
    int(Reach.NONE): Category.DISCONNECTED,
    int(Reach.DEST): Category.IMMUNE,
    int(Reach.ATTACKER): Category.DOOMED,
    int(Reach.BOTH): Category.PROTECTABLE,
}


def _partitions_from_bpr_endpoints(
    ctx: RoutingContext, outcome: RoutingOutcome, model: RankModel
) -> PartitionResult:
    """Security 3rd: classify by the endpoints of the S=∅ BPR set.

    Reads the outcome's flat reach array directly (one byte per AS)
    instead of materializing per-AS route views.
    """
    category_of: dict[int, Category] = {}
    attacker = outcome.attacker
    destination = outcome.destination
    reach = outcome._reach
    fixed = outcome._fixed
    cat = _CATEGORY_OF_REACH
    asn_of = ctx.asns
    dest_i = outcome._dest_i
    att_i = outcome._att_i
    for i in range(ctx.n):
        if i == dest_i or i == att_i:
            continue
        category_of[asn_of[i]] = cat[reach[i]] if fixed[i] else Category.DISCONNECTED
    return PartitionResult(attacker, destination, model, category_of)  # type: ignore[arg-type]


def _partitions_security_second(
    ctx: RoutingContext,
    outcome: RoutingOutcome,
    model: RankModel,
) -> PartitionResult:
    """Security 2nd: endpoints of surviving same-class routes (Cor. E.2).

    An AS stabilizes to a route of the same LP class as its ``S = ∅``
    best routes, but — because security outranks length inside the class
    — possibly via *any* neighbor still offering that class after the
    FixRoutes pruning.  The endpoints it can be steered to are therefore
    the union of its class-``C`` neighbors' own BPR endpoints.
    """
    category_of: dict[int, Category] = {}
    attacker = outcome.attacker
    destination = outcome.destination
    assert attacker is not None
    neighbor_sets = (ctx.customers_idx, ctx.peers_idx, ctx.providers_idx)
    fixed = outcome._fixed
    cls = outcome._cls
    reach_arr = outcome._reach
    asn_of = ctx.asns
    dest_i = outcome._dest_i
    att_i = outcome._att_i
    cat = _CATEGORY_OF_REACH
    customer_cls = int(RouteClass.CUSTOMER)
    provider_cls = int(RouteClass.PROVIDER)
    for i in range(ctx.n):
        if i == dest_i or i == att_i:
            continue
        if not fixed[i]:
            category_of[asn_of[i]] = Category.DISCONNECTED
            continue
        route_class = cls[i]
        from_provider = route_class == provider_cls
        reach = 0
        for nbr in neighbor_sets[route_class][i]:
            if nbr == dest_i:
                reach |= 1
                continue
            if nbr == att_i:
                reach |= 2
                continue
            if not fixed[nbr]:
                continue
            # Ex: the neighbor offers its fixed route to ``asn`` only if
            # it is a customer route or ``asn`` is its customer.
            if cls[nbr] != customer_cls and not from_provider:
                continue
            reach |= reach_arr[nbr]
            if reach == 3:
                break
        # reach == 0 would mean a fixed AS whose every neighbor
        # withholds, which monotone fixing rules out (maps DISCONNECTED).
        category_of[asn_of[i]] = cat[reach]
    return PartitionResult(attacker, destination, model, category_of)


def _partitions_security_first(
    ctx: RoutingContext,
    attacker: int,
    destination: int,
    closures: AttackCloseures,
    model: RankModel,
) -> PartitionResult:
    """Security 1st: Observations E.3/E.4; nearly everything is protectable."""
    category_of: dict[int, Category] = {}
    legitimate_any = closures.legitimate.any()
    attacked_any = closures.attacked.any()
    for asn in ctx.asns:
        if asn == attacker or asn == destination:
            continue
        has_legitimate = asn in legitimate_any
        has_attacked = asn in attacked_any
        if has_legitimate and has_attacked:
            category_of[asn] = Category.PROTECTABLE
        elif has_legitimate:
            category_of[asn] = Category.IMMUNE
        elif has_attacked:
            category_of[asn] = Category.DOOMED
        else:
            category_of[asn] = Category.DISCONNECTED
    return PartitionResult(attacker, destination, model, category_of)
