"""The paper's primary contribution: partial-deployment S*BGP analysis.

The package exposes four layers (see ``docs/ARCHITECTURE.md`` for the
full tour): rank models (:mod:`repro.core.rank`), attacker strategies
(:mod:`repro.core.attacks`), the flat-array routing engine
(:mod:`repro.core.routing`), and the security metric ``H_{M,D}(S)``
(:mod:`repro.core.metrics`), plus the analysis companions (partitions,
downgrades, root causes, NP-hardness).

Example:
    A five-AS topology — ``1`` provides transit to ``2`` and ``3``
    (who peer), with stubs ``4`` under ``2`` and ``5`` under ``3``:

    >>> from repro.topology.graph import ASGraph
    >>> from repro import core
    >>> g = ASGraph()
    >>> for customer, provider in [(2, 1), (3, 1), (4, 2), (5, 3)]:
    ...     g.add_customer_provider(customer, provider)
    >>> g.add_peering(2, 3)

    Under normal conditions everyone reaches the destination ``4``:

    >>> normal = core.normal_conditions(g, 4)
    >>> normal.count_happy()
    (4, 4)

    When ``5`` announces the bogus one-hop path ``"5 4"`` (the paper's
    Section 3.1 attack) with nobody secured, its provider ``3`` prefers
    the lie — a customer route beats the true peer route to ``4`` under
    Gao-Rexford local preference:

    >>> attacked = core.compute_routing_outcome(g, 4, attacker=5)
    >>> attacked.count_happy()
    (2, 2)
    >>> attacked.reaches(3) is core.Reach.ATTACKER
    True

    Securing every AS on the honest path plus the victim's neighborhood
    under the security-1st model rescues ``3``: the unsigned lie is
    ranked below the fully-signed truth:

    >>> S = core.Deployment.of([1, 2, 3, 4])
    >>> secured = core.compute_routing_outcome(
    ...     g, 4, attacker=5, deployment=S, model=core.SECURITY_FIRST,
    ... )
    >>> secured.count_happy()
    (3, 3)

    Unless the attacker forges valid-looking security attributes
    (:data:`repro.core.attacks.FORGED_ORIGIN` — the ROV-era stealth
    hijack), which takes ``3`` right back:

    >>> stealth = core.compute_routing_outcome(
    ...     g, 4, attacker=5, deployment=S,
    ...     model=core.SECURITY_FIRST, attack=core.FORGED_ORIGIN,
    ... )
    >>> stealth.count_happy()
    (2, 2)
"""

from .rank import (
    BASELINE,
    CLASSIC_LP,
    LP2,
    PACK_SHIFT,
    pack_key,
    unpack_key,
    SECURITY_FIRST,
    SECURITY_MODELS,
    SECURITY_SECOND,
    SECURITY_THIRD,
    SURVEY_POPULARITY,
    LocalPreference,
    RankModel,
    SecurityModel,
    lp2_variant,
)
from .attacks import (
    DEFAULT_ATTACK,
    FORGED_ORIGIN,
    HONEST,
    ONE_HOP_HIJACK,
    SHIPPED_STRATEGIES,
    AttackStrategy,
    AttackerBaseline,
    ForgedOriginHijack,
    HonestAnnouncement,
    OneHopHijack,
    PathLengthHijack,
    ResolvedAttack,
    strategy_from_token,
)
from .deployment import (
    Deployment,
    RolloutStep,
    ScenarioCatalog,
    nonstub_deployment,
    stubs_of,
    tier12_rollout,
    tier12_rollout_dense,
    tier1_and_stubs,
    tier2_rollout,
    top_tier2_and_stubs,
)
from .routing import (
    DestinationSweep,
    Reach,
    RolloutSweep,
    RouteInfo,
    RoutingContext,
    RoutingOutcome,
    batch_happiness_counts,
    batch_outcomes,
    compute_routing_outcome,
    normal_conditions,
    rollout_happiness_counts,
)
from .perceivable import (
    AttackCloseures,
    ClassReach,
    attack_closures,
    perceivable_closures,
)
from .partitions import Category, PartitionCounts, PartitionResult, compute_partitions
from .metrics import (
    AttackHappiness,
    Interval,
    MetricResult,
    attack_happiness,
    batch_happiness,
    metric_for_destination,
    metric_improvement,
    rollout_happiness,
    security_metric,
)
from .downgrade import (
    DowngradeAnalysis,
    SecureRouteFate,
    downgrade_analysis,
    secure_route_fate,
)
from .rootcause import (
    PHENOMENA_POSSIBLE,
    PairRootCause,
    RootCauseBreakdown,
    pair_root_cause,
    root_cause_breakdown,
)
from .hardness import (
    ReductionInstance,
    build_set_cover_reduction,
    count_happy_lower,
    greedy_max_k_security,
    max_k_security_bruteforce,
)

__all__ = [
    # attacks
    "AttackStrategy",
    "AttackerBaseline",
    "ResolvedAttack",
    "OneHopHijack",
    "HonestAnnouncement",
    "PathLengthHijack",
    "ForgedOriginHijack",
    "ONE_HOP_HIJACK",
    "HONEST",
    "FORGED_ORIGIN",
    "DEFAULT_ATTACK",
    "SHIPPED_STRATEGIES",
    "strategy_from_token",
    # rank
    "RankModel",
    "SecurityModel",
    "LocalPreference",
    "BASELINE",
    "SECURITY_FIRST",
    "SECURITY_SECOND",
    "SECURITY_THIRD",
    "SECURITY_MODELS",
    "CLASSIC_LP",
    "LP2",
    "SURVEY_POPULARITY",
    "lp2_variant",
    "PACK_SHIFT",
    "pack_key",
    "unpack_key",
    # deployment
    "Deployment",
    "RolloutStep",
    "ScenarioCatalog",
    "stubs_of",
    "tier12_rollout",
    "tier12_rollout_dense",
    "tier2_rollout",
    "nonstub_deployment",
    "tier1_and_stubs",
    "top_tier2_and_stubs",
    # routing
    "DestinationSweep",
    "RolloutSweep",
    "Reach",
    "RouteInfo",
    "RoutingContext",
    "RoutingOutcome",
    "compute_routing_outcome",
    "normal_conditions",
    "batch_outcomes",
    "batch_happiness_counts",
    "rollout_happiness_counts",
    # perceivable / partitions
    "ClassReach",
    "AttackCloseures",
    "perceivable_closures",
    "attack_closures",
    "Category",
    "PartitionCounts",
    "PartitionResult",
    "compute_partitions",
    # metrics
    "Interval",
    "AttackHappiness",
    "MetricResult",
    "attack_happiness",
    "batch_happiness",
    "rollout_happiness",
    "security_metric",
    "metric_for_destination",
    "metric_improvement",
    # downgrade / rootcause
    "DowngradeAnalysis",
    "SecureRouteFate",
    "downgrade_analysis",
    "secure_route_fate",
    "PHENOMENA_POSSIBLE",
    "PairRootCause",
    "RootCauseBreakdown",
    "pair_root_cause",
    "root_cause_breakdown",
    # hardness
    "ReductionInstance",
    "build_set_cover_reduction",
    "count_happy_lower",
    "max_k_security_bruteforce",
    "greedy_max_k_security",
]
