"""The paper's primary contribution: partial-deployment S*BGP analysis."""

from .rank import (
    BASELINE,
    CLASSIC_LP,
    LP2,
    PACK_SHIFT,
    pack_key,
    unpack_key,
    SECURITY_FIRST,
    SECURITY_MODELS,
    SECURITY_SECOND,
    SECURITY_THIRD,
    SURVEY_POPULARITY,
    LocalPreference,
    RankModel,
    SecurityModel,
    lp2_variant,
)
from .deployment import (
    Deployment,
    RolloutStep,
    ScenarioCatalog,
    nonstub_deployment,
    stubs_of,
    tier12_rollout,
    tier1_and_stubs,
    tier2_rollout,
    top_tier2_and_stubs,
)
from .routing import (
    Reach,
    RouteInfo,
    RoutingContext,
    RoutingOutcome,
    batch_happiness_counts,
    batch_outcomes,
    compute_routing_outcome,
    normal_conditions,
)
from .perceivable import (
    AttackCloseures,
    ClassReach,
    attack_closures,
    perceivable_closures,
)
from .partitions import Category, PartitionCounts, PartitionResult, compute_partitions
from .metrics import (
    AttackHappiness,
    Interval,
    MetricResult,
    attack_happiness,
    batch_happiness,
    metric_for_destination,
    metric_improvement,
    security_metric,
)
from .downgrade import (
    DowngradeAnalysis,
    SecureRouteFate,
    downgrade_analysis,
    secure_route_fate,
)
from .rootcause import (
    PHENOMENA_POSSIBLE,
    PairRootCause,
    RootCauseBreakdown,
    pair_root_cause,
    root_cause_breakdown,
)
from .hardness import (
    ReductionInstance,
    build_set_cover_reduction,
    count_happy_lower,
    greedy_max_k_security,
    max_k_security_bruteforce,
)

__all__ = [
    # rank
    "RankModel",
    "SecurityModel",
    "LocalPreference",
    "BASELINE",
    "SECURITY_FIRST",
    "SECURITY_SECOND",
    "SECURITY_THIRD",
    "SECURITY_MODELS",
    "CLASSIC_LP",
    "LP2",
    "SURVEY_POPULARITY",
    "lp2_variant",
    "PACK_SHIFT",
    "pack_key",
    "unpack_key",
    # deployment
    "Deployment",
    "RolloutStep",
    "ScenarioCatalog",
    "stubs_of",
    "tier12_rollout",
    "tier2_rollout",
    "nonstub_deployment",
    "tier1_and_stubs",
    "top_tier2_and_stubs",
    # routing
    "Reach",
    "RouteInfo",
    "RoutingContext",
    "RoutingOutcome",
    "compute_routing_outcome",
    "normal_conditions",
    "batch_outcomes",
    "batch_happiness_counts",
    # perceivable / partitions
    "ClassReach",
    "AttackCloseures",
    "perceivable_closures",
    "attack_closures",
    "Category",
    "PartitionCounts",
    "PartitionResult",
    "compute_partitions",
    # metrics
    "Interval",
    "AttackHappiness",
    "MetricResult",
    "attack_happiness",
    "batch_happiness",
    "security_metric",
    "metric_for_destination",
    "metric_improvement",
    # downgrade / rootcause
    "DowngradeAnalysis",
    "SecureRouteFate",
    "downgrade_analysis",
    "secure_route_fate",
    "PHENOMENA_POSSIBLE",
    "PairRootCause",
    "RootCauseBreakdown",
    "pair_root_cause",
    "root_cause_breakdown",
    # hardness
    "ReductionInstance",
    "build_set_cover_reduction",
    "count_happy_lower",
    "max_k_security_bruteforce",
    "greedy_max_k_security",
]
