"""Perceivable-route closures (Definition B.1 of the paper).

A route is *perceivable* at an AS if it could propagate there under the
export rule ``Ex`` — independent of anybody's route *selection*.  The
partition framework of Section 4.3 classifies ASes by which endpoints
(the legitimate destination ``d`` or the attacker ``m``) they have
perceivable routes of each LP class to:

* ``v`` has a perceivable **customer** route to ``x`` iff some customer
  of ``v`` is ``x`` or itself has a perceivable customer route to ``x``;
* ``v`` has a perceivable **peer** route to ``x`` iff some peer of ``v``
  is ``x`` or has a perceivable customer route to ``x`` (``Ex``: only
  customer routes cross a peering edge);
* ``v`` has a perceivable **provider** route to ``x`` iff some provider
  of ``v`` is ``x`` or has a perceivable route of *any* class to ``x``
  (providers export everything to customers).

Legitimate closures avoid the attacker (it never forwards legitimate
routes while attacking) and attacked closures avoid the destination (it
never forwards the bogus route), matching Observations E.3/E.4.

The closures do not track per-AS loop freedom: an AS whose only
downward path from the customer cone passes through itself is still
included in the provider closure.  This makes the closures a slight
*over*-approximation of Definition B.1's simple-route sets — harmless
for their one consumer, the security-1st classifier, which already
treats nearly everything as protectable (Appendix E.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import deque

from ..topology.graph import ASGraph
from ..topology.relationships import RouteClass
from .routing import RoutingContext


@dataclass(frozen=True)
class ClassReach:
    """ASes with a perceivable route of each class to a fixed endpoint."""

    endpoint: int
    customer: frozenset[int]
    peer: frozenset[int]
    provider: frozenset[int]

    def by_class(self, route_class: RouteClass) -> frozenset[int]:
        if route_class is RouteClass.CUSTOMER:
            return self.customer
        if route_class is RouteClass.PEER:
            return self.peer
        return self.provider

    def any(self) -> frozenset[int]:
        """ASes with a perceivable route of any class."""
        return self.customer | self.peer | self.provider

    def __contains__(self, asn: int) -> bool:
        return (
            asn in self.customer or asn in self.peer or asn in self.provider
        )


def _as_context(topology: ASGraph | RoutingContext) -> RoutingContext:
    if isinstance(topology, RoutingContext):
        return topology
    return RoutingContext(topology)


def perceivable_closures(
    topology: ASGraph | RoutingContext,
    endpoint: int,
    avoid: int | None = None,
) -> ClassReach:
    """Compute the per-class perceivable-route closures toward ``endpoint``.

    Runs in the routing context's dense index space: membership flags
    live in flat bytearrays (one byte per AS) rather than hash sets, and
    the per-relationship index adjacency replaces dict lookups, which
    makes the closures cheap enough to evaluate per attack pair at
    scale.  ASNs only reappear in the returned frozensets.

    Args:
        topology: the AS graph or a prebuilt routing context.
        endpoint: the root the routes lead to (``d`` or ``m``).
        avoid: an AS routes may never pass through (the other root).

    Returns:
        A :class:`ClassReach`; the roots themselves are excluded.
    """
    ctx = _as_context(topology)
    end_i = ctx.index_of.get(endpoint)
    if end_i is None:
        raise ValueError(f"endpoint AS {endpoint} not in graph")
    n = ctx.n
    avoid_i = ctx.index_of.get(avoid, -1) if avoid is not None else -1
    excluded = bytearray(n)
    excluded[end_i] = 1
    if avoid_i >= 0:
        excluded[avoid_i] = 1
    providers_idx = ctx.providers_idx
    peers_idx = ctx.peers_idx
    customers_idx = ctx.customers_idx

    # Customer closure: BFS upward from the endpoint along c2p edges.
    in_customer = bytearray(n)
    customer: list[int] = []
    queue = deque((end_i,))
    while queue:
        u = queue.popleft()
        for p in providers_idx[u]:
            if not in_customer[p] and not excluded[p]:
                in_customer[p] = 1
                customer.append(p)
                queue.append(p)

    # Peer closure: one peering hop off the customer closure (or endpoint).
    in_peer = bytearray(n)
    peer: list[int] = []
    for u in customer + [end_i]:
        for q in peers_idx[u]:
            if not in_peer[q] and not excluded[q]:
                in_peer[q] = 1
                peer.append(q)

    # Provider closure: downward propagation from any reachable AS.
    in_provider = bytearray(n)
    provider: list[int] = []
    queue = deque(customer)
    queue.extend(peer)
    queue.append(end_i)
    while queue:
        u = queue.popleft()
        for c in customers_idx[u]:
            if not in_provider[c] and not excluded[c]:
                in_provider[c] = 1
                provider.append(c)
                queue.append(c)
    asn_of = ctx.asns
    return ClassReach(
        endpoint=endpoint,
        customer=frozenset(asn_of[i] for i in customer),
        peer=frozenset(asn_of[i] for i in peer),
        provider=frozenset(asn_of[i] for i in provider),
    )


@dataclass(frozen=True)
class AttackCloseures:
    """Both closures for one attacker/destination pair."""

    legitimate: ClassReach
    attacked: ClassReach


def attack_closures(
    topology: ASGraph | RoutingContext, attacker: int, destination: int
) -> AttackCloseures:
    """Legitimate (to ``d``, avoiding ``m``) and attacked closures."""
    ctx = _as_context(topology)
    return AttackCloseures(
        legitimate=perceivable_closures(ctx, destination, avoid=attacker),
        attacked=perceivable_closures(ctx, attacker, avoid=destination),
    )
