"""Perceivable-route closures (Definition B.1 of the paper).

A route is *perceivable* at an AS if it could propagate there under the
export rule ``Ex`` — independent of anybody's route *selection*.  The
partition framework of Section 4.3 classifies ASes by which endpoints
(the legitimate destination ``d`` or the attacker ``m``) they have
perceivable routes of each LP class to:

* ``v`` has a perceivable **customer** route to ``x`` iff some customer
  of ``v`` is ``x`` or itself has a perceivable customer route to ``x``;
* ``v`` has a perceivable **peer** route to ``x`` iff some peer of ``v``
  is ``x`` or has a perceivable customer route to ``x`` (``Ex``: only
  customer routes cross a peering edge);
* ``v`` has a perceivable **provider** route to ``x`` iff some provider
  of ``v`` is ``x`` or has a perceivable route of *any* class to ``x``
  (providers export everything to customers).

Legitimate closures avoid the attacker (it never forwards legitimate
routes while attacking) and attacked closures avoid the destination (it
never forwards the bogus route), matching Observations E.3/E.4.

The closures do not track per-AS loop freedom: an AS whose only
downward path from the customer cone passes through itself is still
included in the provider closure.  This makes the closures a slight
*over*-approximation of Definition B.1's simple-route sets — harmless
for their one consumer, the security-1st classifier, which already
treats nearly everything as protectable (Appendix E.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import deque

from ..topology.graph import ASGraph
from ..topology.relationships import RouteClass
from .routing import RoutingContext


@dataclass(frozen=True)
class ClassReach:
    """ASes with a perceivable route of each class to a fixed endpoint."""

    endpoint: int
    customer: frozenset[int]
    peer: frozenset[int]
    provider: frozenset[int]

    def by_class(self, route_class: RouteClass) -> frozenset[int]:
        if route_class is RouteClass.CUSTOMER:
            return self.customer
        if route_class is RouteClass.PEER:
            return self.peer
        return self.provider

    def any(self) -> frozenset[int]:
        """ASes with a perceivable route of any class."""
        return self.customer | self.peer | self.provider

    def __contains__(self, asn: int) -> bool:
        return (
            asn in self.customer or asn in self.peer or asn in self.provider
        )


def _as_context(topology: ASGraph | RoutingContext) -> RoutingContext:
    if isinstance(topology, RoutingContext):
        return topology
    return RoutingContext(topology)


def perceivable_closures(
    topology: ASGraph | RoutingContext,
    endpoint: int,
    avoid: int | None = None,
) -> ClassReach:
    """Compute the per-class perceivable-route closures toward ``endpoint``.

    Args:
        topology: the AS graph or a prebuilt routing context.
        endpoint: the root the routes lead to (``d`` or ``m``).
        avoid: an AS routes may never pass through (the other root).

    Returns:
        A :class:`ClassReach`; the roots themselves are excluded.
    """
    ctx = _as_context(topology)
    if endpoint not in ctx.providers_of:
        raise ValueError(f"endpoint AS {endpoint} not in graph")
    excluded = {endpoint, avoid} if avoid is not None else {endpoint}

    # Customer closure: BFS upward from the endpoint along c2p edges.
    customer: set[int] = set()
    queue = deque((endpoint,))
    while queue:
        u = queue.popleft()
        for p in ctx.providers_of[u]:
            if p not in customer and p not in excluded:
                customer.add(p)
                queue.append(p)

    # Peer closure: one peering hop off the customer closure (or endpoint).
    exporters = customer | {endpoint}
    peer: set[int] = set()
    for u in exporters:
        for q in ctx.peers_of[u]:
            if q not in excluded:
                peer.add(q)

    # Provider closure: downward propagation from any reachable AS.
    provider: set[int] = set()
    seeds = customer | peer | {endpoint}
    queue = deque(seeds)
    while queue:
        u = queue.popleft()
        for c in ctx.customers_of[u]:
            if c not in provider and c not in excluded:
                provider.add(c)
                queue.append(c)
    return ClassReach(
        endpoint=endpoint,
        customer=frozenset(customer),
        peer=frozenset(peer),
        provider=frozenset(provider),
    )


@dataclass(frozen=True)
class AttackCloseures:
    """Both closures for one attacker/destination pair."""

    legitimate: ClassReach
    attacked: ClassReach


def attack_closures(
    topology: ASGraph | RoutingContext, attacker: int, destination: int
) -> AttackCloseures:
    """Legitimate (to ``d``, avoiding ``m``) and attacked closures."""
    ctx = _as_context(topology)
    return AttackCloseures(
        legitimate=perceivable_closures(ctx, destination, avoid=attacker),
        attacked=perceivable_closures(ctx, attacker, avoid=destination),
    )
