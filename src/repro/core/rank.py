"""Routing-policy models as monotone rank keys (Sections 2.2.1-2.2.2, App. K).

Every model in the paper ranks a route by some ordering of three
attributes:

* its LP class (customer / peer / provider — or the interleaved ``LPk``
  buckets of Appendix K),
* its security (learned via S*BGP or via legacy BGP),
* its AS-path length,

followed by an intradomain tiebreak (``TB``).  This module encodes each
model as a function from ``(route class, length, secure)`` to a sortable
tuple — smaller is better:

=============== ==========================================
baseline        ``(LP, length)``           (origin authentication only)
security 1st    ``(¬secure, LP, length)``
security 2nd    ``(LP, ¬secure, length)``
security 3rd    ``(LP, length, ¬secure)``
=============== ==========================================

These keys are *monotone* under route extension: if AS ``v`` learns a
route through neighbor ``u``, the key of ``v``'s route is strictly larger
than the key of ``u``'s (length grows; the LP class can only move toward
provider because of the export rule ``Ex``; an insecure announcement can
never become secure again).  Monotonicity is what lets a single
Dijkstra-style fixing pass (:mod:`repro.core.routing`) implement all of
the staged BFS algorithms of Appendix B, and it is verified exhaustively
in ``tests/test_rank.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..topology.relationships import RouteClass


class SecurityModel(enum.Enum):
    """Where the ``SecP`` step sits in the route-selection process."""

    #: Origin authentication only; security plays no role in ranking.
    BASELINE = "baseline"
    #: ``SecP`` before ``LP``: security is the highest priority.
    FIRST = "security_1st"
    #: ``SecP`` between ``LP`` and ``SP``.
    SECOND = "security_2nd"
    #: ``SecP`` between ``SP`` and ``TB`` (the model of Gill et al.).
    THIRD = "security_3rd"


#: The operator survey of [18]: fraction of the 100 surveyed operators
#: that would adopt each placement (the rest declined to answer).
SURVEY_POPULARITY = {
    SecurityModel.FIRST: 0.10,
    SecurityModel.SECOND: 0.20,
    SecurityModel.THIRD: 0.41,
}


@dataclass(frozen=True)
class LocalPreference:
    """The LP step: classic Gao-Rexford or the ``LPk`` variant of App. K.

    With ``peer_window=None`` this is the classic model: customer > peer >
    provider.  With ``peer_window=k`` (``LPk``), routes are bucketed as::

        cust(len 1), peer(len 1), ..., cust(len k), peer(len k),
        cust(len >k), peer(len >k), provider

    ``peer_window=0`` is not allowed (it would collapse to the classic
    model with extra steps); use ``None`` for classic.  ``k → ∞`` (any
    value ≥ graph diameter) yields the "customer and peer equally
    preferred, shorter first" variant discussed in Appendix K.
    """

    peer_window: int | None = None

    def __post_init__(self) -> None:
        if self.peer_window is not None and self.peer_window < 1:
            raise ValueError("peer_window must be >= 1 (or None for classic LP)")

    def bucket(self, route_class: RouteClass, length: int) -> int:
        """LP bucket of a route; smaller is better."""
        if self.peer_window is None:
            return int(route_class)
        k = self.peer_window
        if route_class is RouteClass.PROVIDER:
            return 2 * (k + 1)
        capped = min(length, k + 1)
        offset = 0 if route_class is RouteClass.CUSTOMER else 1
        return 2 * (capped - 1) + offset

    @property
    def label(self) -> str:
        return "LP" if self.peer_window is None else f"LP{self.peer_window}"


CLASSIC_LP = LocalPreference()
LP2 = LocalPreference(peer_window=2)

#: Rank keys are tuples of small ints; smaller compares as "preferred".
RankKey = tuple[int, int, int]

#: Bits per packed-key component.  Each of the two lower components must
#: stay below ``2**PACK_SHIFT``; route lengths are bounded by ``|V|`` and
#: the flat routing engine enforces ``|V| < 2**PACK_SHIFT`` at build time.
PACK_SHIFT = 21
_PACK_MASK = (1 << PACK_SHIFT) - 1


def pack_key(key: RankKey) -> int:
    """Pack a rank key into one int, preserving lexicographic order.

    The flat routing engine (:mod:`repro.core.routing`) keeps rank keys
    as single machine-word ints so its scratch buffers and heap entries
    avoid per-route tuple allocation.  Packing is order-preserving as
    long as ``key[1]`` and ``key[2]`` fit in :data:`PACK_SHIFT` bits,
    which every model guarantees for graphs below ``2**PACK_SHIFT``
    ASes (components are LP buckets, lengths, or a 0/1 security bit).
    """
    return (key[0] << (2 * PACK_SHIFT)) | (key[1] << PACK_SHIFT) | key[2]


def unpack_key(packed: int) -> RankKey:
    """Inverse of :func:`pack_key`."""
    return (
        packed >> (2 * PACK_SHIFT),
        (packed >> PACK_SHIFT) & _PACK_MASK,
        packed & _PACK_MASK,
    )


@dataclass(frozen=True)
class RankModel:
    """A complete route-ranking model: security placement + LP variant.

    Use :meth:`key` to rank a route.  The ``secure`` argument must be the
    *receiver's effective* security of the route: True only if the route
    was learned via S*BGP end-to-end **and** the receiving AS has deployed
    (full) S*BGP — an AS that has not deployed S*BGP cannot validate
    anything and ranks every route as insecure.
    """

    model: SecurityModel = SecurityModel.BASELINE
    local_preference: LocalPreference = CLASSIC_LP

    def key(self, route_class: RouteClass, length: int, secure: bool) -> RankKey:
        """Sortable rank of a route; lexicographically smaller wins."""
        if length < 1:
            raise ValueError(f"route length must be >= 1, got {length}")
        insecure = 0 if secure else 1
        bucket = self.local_preference.bucket(route_class, length)
        if self.model is SecurityModel.FIRST:
            return (insecure, bucket, length)
        if self.model is SecurityModel.SECOND:
            return (bucket, insecure, length)
        if self.model is SecurityModel.THIRD:
            return (bucket, length, insecure)
        return (bucket, length, 0)

    def packed_coeffs(self) -> tuple[int, int, int] | None:
        """Linear coefficients for packed keys under classic LP.

        With the classic local preference the LP bucket *is* the route
        class, so every placement's key is linear in ``(class, length,
        insecure)`` and the packed key (:func:`pack_key`) is::

            packed = class * CM + length * LM + insecure * SM

        Returns ``(CM, LM, SM)``, or None for ``LPk`` variants whose
        bucket is a nonlinear function of length (the engine falls back
        to :meth:`packed_key` for those).  The flat routing engine
        inlines this formula in its relaxation loop — one multiply-add
        per edge instead of a method call plus a tuple allocation.
        """
        if self.local_preference.peer_window is not None:
            return None
        hi = 1 << (2 * PACK_SHIFT)
        mid = 1 << PACK_SHIFT
        if self.model is SecurityModel.FIRST:
            return (mid, 1, hi)  # (insecure, class, length)
        if self.model is SecurityModel.SECOND:
            return (hi, 1, mid)  # (class, insecure, length)
        if self.model is SecurityModel.THIRD:
            return (hi, mid, 1)  # (class, length, insecure)
        return (hi, mid, 0)  # baseline: (class, length, 0)

    def packed_key(self, route_class: RouteClass, length: int, secure: bool) -> int:
        """:meth:`key` packed via :func:`pack_key` (generic slow path)."""
        return pack_key(self.key(route_class, length, secure))

    @property
    def uses_security(self) -> bool:
        return self.model is not SecurityModel.BASELINE

    @property
    def label(self) -> str:
        lp = self.local_preference.label
        return f"{self.model.value}/{lp}" if lp != "LP" else self.model.value


#: Ready-made models used throughout the experiments.
BASELINE = RankModel(SecurityModel.BASELINE)
SECURITY_FIRST = RankModel(SecurityModel.FIRST)
SECURITY_SECOND = RankModel(SecurityModel.SECOND)
SECURITY_THIRD = RankModel(SecurityModel.THIRD)

#: The three S*BGP placements, in the paper's order.
SECURITY_MODELS = (SECURITY_FIRST, SECURITY_SECOND, SECURITY_THIRD)


def lp2_variant(model: RankModel) -> RankModel:
    """The Appendix K ``LP2`` twin of a model."""
    return RankModel(model.model, LP2)
