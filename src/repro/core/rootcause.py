"""Root-cause analysis of metric changes (Section 6, Figure 16, Table 3).

Deploying S*BGP at some ASes changes other ASes' fates through three
phenomena:

* **protocol downgrades** (§3.2) — secure routes that disappear under
  attack (possible when security is 2nd or 3rd, never when 1st);
* **collateral benefits** (§6.1.2) — an *insecure* AS becomes happy
  because secure ASes upstream changed their choices (all models);
* **collateral damages** (§6.1.1) — an *insecure* AS becomes unhappy for
  the same reason (possible when security is 1st or 2nd; Theorem 6.1
  rules it out when security is 3rd).

:func:`root_cause_breakdown` reproduces the Figure 16 accounting: the
fate of the secure routes that exist under normal conditions, plus the
exact identity ``ΔH = gains − losses`` that the figure stacks up.
All happiness uses the metric's *lower bound* (adversarial tiebreaks),
matching the paper's Figure 16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..topology.graph import ASGraph
from .deployment import Deployment
from .rank import RankModel, SecurityModel
from .routing import RoutingContext, compute_routing_outcome


#: Table 3 of the paper: which phenomena are possible in which model.
PHENOMENA_POSSIBLE: dict[SecurityModel, dict[str, bool]] = {
    SecurityModel.FIRST: {
        "protocol_downgrade": False,
        "collateral_benefit": True,
        "collateral_damage": True,
    },
    SecurityModel.SECOND: {
        "protocol_downgrade": True,
        "collateral_benefit": True,
        "collateral_damage": True,
    },
    SecurityModel.THIRD: {
        "protocol_downgrade": True,
        "collateral_benefit": True,
        "collateral_damage": False,
    },
}


@dataclass(frozen=True)
class PairRootCause:
    """Per-(m, d) source sets behind the metric change from ∅ to S."""

    attacker: int
    destination: int
    #: sources with secure routes under normal conditions.
    secure_normal: frozenset[int]
    #: secure routes lost to the attack (protocol downgrades).
    downgraded: frozenset[int]
    #: secure routes retained by sources already happy with S = ∅
    #: ("wasted" — they bought nothing).
    wasted_secure: frozenset[int]
    #: secure routes retained by sources unhappy with S = ∅ (real wins).
    protected_secure: frozenset[int]
    #: insecure sources that became happy (collateral benefits).
    collateral_benefit: frozenset[int]
    #: other newly happy sources (secure-set members without secure routes).
    other_gains: frozenset[int]
    #: happy-with-∅ sources that became unhappy, outside S (collateral
    #: damages).
    collateral_damage: frozenset[int]
    #: happy-with-∅ members of S that became unhappy.
    other_losses: frozenset[int]
    happy_baseline: int
    happy_deployed: int

    @property
    def gains(self) -> int:
        return (
            len(self.protected_secure)
            + len(self.collateral_benefit)
            + len(self.other_gains)
        )

    @property
    def losses(self) -> int:
        return len(self.collateral_damage) + len(self.other_losses)

    @property
    def metric_change(self) -> int:
        """Happy-count change; equals ``gains - losses`` (verified in tests)."""
        return self.happy_deployed - self.happy_baseline


def pair_root_cause(
    topology: ASGraph | RoutingContext,
    attacker: int,
    destination: int,
    deployment: Deployment,
    model: RankModel,
) -> PairRootCause:
    """Classify every source's fate change for one attack pair.

    Happiness is the lower bound (tiebreak-adversarial), as in Figure 16.
    """
    ctx = topology if isinstance(topology, RoutingContext) else RoutingContext(topology)
    baseline_attack = compute_routing_outcome(
        ctx, destination, attacker=attacker, deployment=Deployment.empty(), model=model
    )
    deployed_normal = compute_routing_outcome(
        ctx, destination, attacker=None, deployment=deployment, model=model
    )
    deployed_attack = compute_routing_outcome(
        ctx, destination, attacker=attacker, deployment=deployment, model=model
    )

    secure_normal: set[int] = set()
    downgraded: set[int] = set()
    wasted: set[int] = set()
    protected: set[int] = set()
    benefit: set[int] = set()
    other_gains: set[int] = set()
    damage: set[int] = set()
    other_losses: set[int] = set()
    happy_baseline = 0
    happy_deployed = 0

    # All three outcomes share ctx's dense index space, so the per-AS
    # classification walks flat arrays instead of per-AS route lookups.
    asn_of = ctx.asns
    dest_i = deployed_attack._dest_i
    att_i = deployed_attack._att_i
    base_fixed = baseline_attack._fixed
    base_reach = baseline_attack._reach
    dep_fixed = deployed_attack._fixed
    dep_reach = deployed_attack._reach
    dep_sec = deployed_attack._sec
    norm_fixed = deployed_normal._fixed
    norm_sec = deployed_normal._sec
    ranking = ctx.deployment_masks(deployment)[1]

    for i in range(ctx.n):
        if i == dest_i or i == att_i:
            continue
        was_happy = bool(base_fixed[i]) and base_reach[i] == 1
        now_happy = bool(dep_fixed[i]) and dep_reach[i] == 1
        happy_baseline += was_happy
        happy_deployed += now_happy
        had_secure = bool(norm_fixed[i]) and bool(norm_sec[i])
        has_secure = bool(dep_fixed[i]) and bool(dep_sec[i])
        if not (was_happy or now_happy or had_secure or has_secure):
            continue
        asn = asn_of[i]
        if had_secure:
            secure_normal.add(asn)
            if not has_secure:
                downgraded.add(asn)
        if has_secure:
            if was_happy:
                wasted.add(asn)
            else:
                protected.add(asn)
        if now_happy and not was_happy and not has_secure:
            if ranking[i]:
                other_gains.add(asn)
            else:
                benefit.add(asn)
        if was_happy and not now_happy:
            if ranking[i]:
                other_losses.add(asn)
            else:
                damage.add(asn)

    return PairRootCause(
        attacker=attacker,
        destination=destination,
        secure_normal=frozenset(secure_normal),
        downgraded=frozenset(downgraded),
        wasted_secure=frozenset(wasted),
        protected_secure=frozenset(protected),
        collateral_benefit=frozenset(benefit),
        other_gains=frozenset(other_gains),
        collateral_damage=frozenset(damage),
        other_losses=frozenset(other_losses),
        happy_baseline=happy_baseline,
        happy_deployed=happy_deployed,
    )


@dataclass(frozen=True)
class RootCauseBreakdown:
    """Figure 16: average source fractions over a set of attack pairs."""

    model: RankModel
    num_pairs: int
    num_sources: int
    secure_routes_normal: float
    downgrades: float
    wasted_secure: float
    protected_secure: float
    collateral_benefits: float
    collateral_damages: float
    other_gains: float
    other_losses: float
    metric_change: float

    def identity_residual(self) -> float:
        """``ΔH − (gains − losses)``; exactly 0 up to float error."""
        gains = self.protected_secure + self.collateral_benefits + self.other_gains
        losses = self.collateral_damages + self.other_losses
        return self.metric_change - (gains - losses)


def root_cause_breakdown(
    topology: ASGraph | RoutingContext,
    pairs: Sequence[tuple[int, int]],
    deployment: Deployment,
    model: RankModel,
) -> RootCauseBreakdown:
    """Average the per-pair root causes over ``pairs`` (Figure 16 bars)."""
    ctx = topology if isinstance(topology, RoutingContext) else RoutingContext(topology)
    num_sources = len(ctx.asns) - 2
    totals = {
        "secure_normal": 0,
        "downgraded": 0,
        "wasted": 0,
        "protected": 0,
        "benefit": 0,
        "damage": 0,
        "other_gains": 0,
        "other_losses": 0,
        "change": 0,
    }
    used = 0
    for attacker, destination in pairs:
        if attacker == destination:
            continue
        used += 1
        pr = pair_root_cause(ctx, attacker, destination, deployment, model)
        totals["secure_normal"] += len(pr.secure_normal)
        totals["downgraded"] += len(pr.downgraded)
        totals["wasted"] += len(pr.wasted_secure)
        totals["protected"] += len(pr.protected_secure)
        totals["benefit"] += len(pr.collateral_benefit)
        totals["damage"] += len(pr.collateral_damage)
        totals["other_gains"] += len(pr.other_gains)
        totals["other_losses"] += len(pr.other_losses)
        totals["change"] += pr.metric_change
    scale = 1.0 / (used * num_sources) if used and num_sources else 0.0
    return RootCauseBreakdown(
        model=model,
        num_pairs=used,
        num_sources=num_sources,
        secure_routes_normal=totals["secure_normal"] * scale,
        downgrades=totals["downgraded"] * scale,
        wasted_secure=totals["wasted"] * scale,
        protected_secure=totals["protected"] * scale,
        collateral_benefits=totals["benefit"] * scale,
        collateral_damages=totals["damage"] * scale,
        other_gains=totals["other_gains"] * scale,
        other_losses=totals["other_losses"] * scale,
        metric_change=totals["change"] * scale,
    )
