"""The security metric ``H_{M,D}(S)`` (Section 4.1).

For an attacker ``m`` attacking destination ``d`` under deployment ``S``,
``H(m, d, S)`` counts the *happy* sources: those choosing a legitimate
route to ``d`` rather than the bogus route to ``m``.  The metric averages
the happy fraction over a set of attackers ``M`` and destinations ``D``::

    H_{M,D}(S) = 1/(|D| (|M|-1) (|V|-2)) Σ_m Σ_{d≠m} H(m, d, S)

Because the model determines routing only up to the intradomain tiebreak
``TB``, every quantity is reported as a ``[lower, upper]`` interval: the
lower bound assumes every tiebreak-dependent AS chooses the bogus route,
the upper bound that it chooses the legitimate one (Section 4.1).

The paper evaluates all ``O(|V|²)`` pairs on supercomputers; here ``M``
and ``D`` are explicit (typically seeded samples — see
:mod:`repro.experiments.sampling`), which estimates the same average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..topology.graph import ASGraph
from .attacks import DEFAULT_ATTACK, AttackStrategy
from .deployment import Deployment
from .rank import RankModel
from .routing import (
    RoutingContext,
    batch_happiness_counts,
    compute_routing_outcome,
    rollout_happiness_counts,
)

#: A mapper with the semantics of builtin ``map`` — swap in
#: ``multiprocessing.Pool.imap`` (via :mod:`repro.experiments.runner`)
#: for parallel evaluation.
Mapper = Callable[..., Iterable]


@dataclass(frozen=True)
class Interval:
    """A [lower, upper] bound pair on a fraction.

    Two *different* difference semantics exist, and they are not
    interchangeable:

    * :meth:`__sub__` is the **conservative interval difference**
      ``[a.lower − b.upper, a.upper − b.lower]`` of interval
      arithmetic: it contains every value ``x − y`` with ``x ∈ a``,
      ``y ∈ b``.  Use it when the two intervals' tiebreaks are
      genuinely independent.
    * :meth:`bound_delta` is the **bound-wise delta**
      ``sorted(a.lower − b.lower, a.upper − b.upper)`` used by
      ``metric_improvement`` / ``EvalResults.delta``:
      the paper's Figures 7-12 plot the increase of each *bound* of
      ``H_{M,D}``, not a conservative difference — under the common
      tiebreak conventions the lower bounds of both metrics refer to
      the *same* adversarial tiebreak, so subtracting bound-wise is the
      meaningful (and much tighter) quantity.

    Historically ``metric_improvement`` computed the bound-wise delta
    inline while ``__sub__`` sat unused with the other semantics — an
    easy trap.  Both are now named, documented and tested.
    """

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-12:
            raise ValueError(f"lower {self.lower} exceeds upper {self.upper}")

    @property
    def width(self) -> float:
        return self.upper - self.lower

    @property
    def midpoint(self) -> float:
        return (self.lower + self.upper) / 2.0

    def __sub__(self, other: "Interval") -> "Interval":
        """Conservative interval difference (contains every x − y)."""
        return Interval(self.lower - other.upper, self.upper - other.lower)

    def bound_delta(self, other: "Interval") -> "Interval":
        """Bound-wise delta ``self − other`` (the Figures 7-12 quantity).

        Subtracts lower from lower and upper from upper, then orders the
        two results into a valid interval.
        """
        deltas = (self.lower - other.lower, self.upper - other.upper)
        return Interval(min(deltas), max(deltas))

    def shift(self, value: float) -> "Interval":
        return Interval(self.lower - value, self.upper - value)

    def __str__(self) -> str:
        return f"[{self.lower:.4f}, {self.upper:.4f}]"


@dataclass(frozen=True)
class AttackHappiness:
    """Happy-source counts for a single (m, d) attack."""

    attacker: int
    destination: int
    happy_lower: int
    happy_upper: int
    num_sources: int

    @property
    def fraction(self) -> Interval:
        if self.num_sources == 0:
            return Interval(0.0, 0.0)
        return Interval(
            self.happy_lower / self.num_sources,
            self.happy_upper / self.num_sources,
        )


@dataclass(frozen=True)
class MetricResult:
    """``H_{M,D}(S)`` over an explicit pair set."""

    value: Interval
    per_pair: tuple[AttackHappiness, ...]

    @property
    def num_pairs(self) -> int:
        return len(self.per_pair)


def attack_happiness(
    topology: ASGraph | RoutingContext,
    attacker: int,
    destination: int,
    deployment: Deployment,
    model: RankModel,
    attack: AttackStrategy = DEFAULT_ATTACK,
) -> AttackHappiness:
    """Happy-source counts when ``attacker`` attacks ``destination``."""
    outcome = compute_routing_outcome(
        topology, destination, attacker=attacker, deployment=deployment,
        model=model, attack=attack,
    )
    lower, upper = outcome.count_happy()
    return AttackHappiness(
        attacker=attacker,
        destination=destination,
        happy_lower=lower,
        happy_upper=upper,
        num_sources=outcome.num_sources,
    )


def security_metric(
    topology: ASGraph | RoutingContext,
    pairs: Sequence[tuple[int, int]],
    deployment: Deployment,
    model: RankModel,
    mapper: Mapper = map,
    attack: AttackStrategy = DEFAULT_ATTACK,
) -> MetricResult:
    """``H_{M,D}(S)`` averaged over explicit ``(attacker, destination)`` pairs.

    Args:
        topology: graph or prebuilt routing context.
        pairs: the ``(m, d)`` pairs to average over (``m != d``).
        deployment: the secure set ``S``.
        model: routing-policy model.
        mapper: map-like callable for parallel execution.
        attack: the attacker strategy (:mod:`repro.core.attacks`);
            defaults to the paper's one-hop hijack.

    Returns:
        A :class:`MetricResult`; its ``value`` interval is the mean of
        the per-pair happy fractions.

    Example:
        Three providers in a row, the destination ``3`` a stub of ``2``,
        the attacker ``4`` a stub of ``1``; with nobody secured every
        source falls for the one-hop lie except the attacker's provider,
        which sits one hop from both roots (a knife-edge tiebreak):

        >>> from repro.topology.graph import ASGraph
        >>> from repro.core.rank import BASELINE
        >>> from repro.core.deployment import Deployment
        >>> g = ASGraph()
        >>> for customer, provider in [(2, 1), (3, 2), (4, 1)]:
        ...     g.add_customer_provider(customer, provider)
        >>> result = security_metric(
        ...     g, [(4, 3)], Deployment.empty(), BASELINE
        ... )
        >>> print(result.value)
        [0.5000, 1.0000]
    """
    ctx = topology if isinstance(topology, RoutingContext) else RoutingContext(topology)
    if mapper is map:
        # Batched fast path: pairs are evaluated destination-major (one
        # attacker-free fixing pass per destination, an O(dirty) delta
        # re-fix per attacker — see repro.core.routing.DestinationSweep)
        # over the context's reusable scratch buffers, no outcome
        # materialization.
        results = tuple(batch_happiness(ctx, pairs, deployment, model, attack=attack))
    else:
        results = tuple(
            mapper(
                _happiness_task,
                ((ctx, m, d, deployment, model, attack) for (m, d) in pairs),
            )
        )
    return MetricResult(value=_mean_interval(results), per_pair=results)


def batch_happiness(
    topology: ASGraph | RoutingContext,
    pairs: Sequence[tuple[int, int]],
    deployment: Deployment,
    model: RankModel,
    *,
    destination_major: bool = True,
    attack: AttackStrategy = DEFAULT_ATTACK,
) -> list[AttackHappiness]:
    """Happy-source counts for many ``(m, d)`` pairs in one sweep.

    Amortizes deployment-mask construction and scratch-buffer reuse
    across the whole pair list, and (by default) evaluates the pairs
    destination-major through :class:`repro.core.routing.DestinationSweep`
    so every destination's attacker-free state is fixed once and each
    attacker costs only its dirty region (see
    :func:`repro.core.routing.batch_happiness_counts`; results are in
    input pair order and bit-identical on both paths).  This is what
    each worker of :mod:`repro.experiments.runner` runs on its share of
    destination groups.
    """
    pairs = list(pairs)  # consumed twice below; accept one-shot iterables
    counts = batch_happiness_counts(
        topology, pairs, deployment, model,
        destination_major=destination_major, attack=attack,
    )
    return [
        AttackHappiness(
            attacker=m,
            destination=d,
            happy_lower=lower,
            happy_upper=upper,
            num_sources=num_sources,
        )
        for (m, d), (lower, upper, num_sources) in zip(pairs, counts)
    ]


def rollout_happiness(
    topology: ASGraph | RoutingContext,
    pairs: Sequence[tuple[int, int]],
    deployments: Sequence[Deployment],
    model: RankModel,
    *,
    attack: AttackStrategy = DEFAULT_ATTACK,
) -> list[list[AttackHappiness]]:
    """Happy-source counts for many pairs under a nested-deployment
    chain, rollout-major: ``result[t][i]`` is pair ``i`` under
    ``deployments[t]``.

    Each destination group walks the whole chain on one warm
    :class:`repro.core.routing.RolloutSweep` (see
    :func:`repro.core.routing.rollout_happiness_counts`); per-step
    results are in input pair order and bit-identical to evaluating
    every step independently through :func:`batch_happiness`.  This is
    what each scheduler worker runs on its share of destination groups
    when the scenario plane detects a nested-deployment chain.
    """
    pairs = list(pairs)
    per_step = rollout_happiness_counts(
        topology, pairs, deployments, model, attack=attack
    )
    return [
        [
            AttackHappiness(
                attacker=m,
                destination=d,
                happy_lower=lower,
                happy_upper=upper,
                num_sources=num_sources,
            )
            for (m, d), (lower, upper, num_sources) in zip(pairs, counts)
        ]
        for counts in per_step
    ]


def _happiness_task(args: tuple) -> AttackHappiness:
    ctx, attacker, destination, deployment, model, attack = args
    return attack_happiness(ctx, attacker, destination, deployment, model, attack)


def _mean_interval(results: Sequence[AttackHappiness]) -> Interval:
    if not results:
        return Interval(0.0, 0.0)
    lower = sum(r.fraction.lower for r in results) / len(results)
    upper = sum(r.fraction.upper for r in results) / len(results)
    return Interval(lower, upper)


def metric_for_destination(
    topology: ASGraph | RoutingContext,
    attackers: Sequence[int],
    destination: int,
    deployment: Deployment,
    model: RankModel,
    mapper: Mapper = map,
    attack: AttackStrategy = DEFAULT_ATTACK,
) -> MetricResult:
    """``H_{M,d}(S)``: the metric restricted to one destination (§5.2.3)."""
    pairs = [(m, destination) for m in attackers if m != destination]
    return security_metric(
        topology, pairs, deployment, model, mapper=mapper, attack=attack
    )


def metric_improvement(
    topology: ASGraph | RoutingContext,
    pairs: Sequence[tuple[int, int]],
    deployment: Deployment,
    model: RankModel,
    baseline: MetricResult | None = None,
    mapper: Mapper = map,
    attack: AttackStrategy = DEFAULT_ATTACK,
) -> tuple[Interval, MetricResult, MetricResult]:
    """``H_{M,D}(S) − H_{M,D}(∅)``, the paper's headline quantity.

    The delta is computed *bound-wise* — lower(S) − lower(∅) and
    upper(S) − upper(∅) — matching the paper's Figures 7-12, which
    plot the increase of each bound rather than a conservative interval
    difference.  Both sides are evaluated under the same attacker
    strategy, so the delta isolates what the deployment buys against
    that threat model.

    Returns:
        ``(delta, metric_with_S, metric_baseline)``.
    """
    ctx = topology if isinstance(topology, RoutingContext) else RoutingContext(topology)
    if baseline is None:
        baseline = security_metric(
            ctx, pairs, Deployment.empty(), model, mapper=mapper, attack=attack
        )
    secured = security_metric(
        ctx, pairs, deployment, model, mapper=mapper, attack=attack
    )
    return secured.value.bound_delta(baseline.value), secured, baseline
