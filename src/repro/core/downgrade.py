"""Protocol downgrade attacks (Section 3.2, Appendix F.1, Figure 13).

A source suffers a *protocol downgrade* when it uses a secure route to
the destination under normal conditions but an insecure (typically
bogus) route during the attack.  Theorem 3.1 guarantees this cannot
happen in the security 1st model; in the 2nd and 3rd models it is the
dominant reason partial deployments fail to protect anyone (§5.3.1).

Following Appendix F.1, a downgrade is detected by comparing two routing
computations: normal conditions (``m = ∅``) and under attack, both with
the same deployment and model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..topology.graph import ASGraph
from .deployment import Deployment
from .partitions import Category, compute_partitions
from .rank import RankModel
from .routing import RoutingContext, RoutingOutcome, compute_routing_outcome


@dataclass(frozen=True)
class DowngradeAnalysis:
    """Secure-route fate for one ``(m, d, S)`` attack.

    Attributes:
        secure_normal: sources using secure routes with no attacker.
        secure_attack: sources still using secure routes under attack.
        downgraded: sources that lost their secure route to the attack
            (``secure_normal − secure_attack``).
    """

    attacker: int
    destination: int
    secure_normal: frozenset[int]
    secure_attack: frozenset[int]

    @property
    def downgraded(self) -> frozenset[int]:
        return self.secure_normal - self.secure_attack

    @property
    def retained(self) -> frozenset[int]:
        return self.secure_normal & self.secure_attack


def downgrade_analysis(
    topology: ASGraph | RoutingContext,
    attacker: int,
    destination: int,
    deployment: Deployment,
    model: RankModel,
    normal_outcome: RoutingOutcome | None = None,
) -> DowngradeAnalysis:
    """Detect protocol downgrades for one attack (Appendix F.1).

    Args:
        topology: graph or prebuilt context.
        attacker / destination: the attack pair.
        deployment: the secure set ``S``.
        model: routing-policy model.
        normal_outcome: optional precomputed normal-conditions outcome
            (reuse it when sweeping attackers against one destination).
    """
    ctx = topology if isinstance(topology, RoutingContext) else RoutingContext(topology)
    if normal_outcome is None:
        normal_outcome = compute_routing_outcome(
            ctx, destination, attacker=None, deployment=deployment, model=model
        )
    attack_outcome = compute_routing_outcome(
        ctx, destination, attacker=attacker, deployment=deployment, model=model
    )
    # The attacker is a source of the normal-conditions outcome but not
    # of the attack outcome; drop it so the two sets are comparable.
    secure_normal = normal_outcome.secure_sources() - {attacker}
    secure_attack = attack_outcome.secure_sources()
    return DowngradeAnalysis(
        attacker=attacker,
        destination=destination,
        secure_normal=secure_normal,
        secure_attack=secure_attack,
    )


@dataclass(frozen=True)
class SecureRouteFate:
    """Figure 13's per-destination bar: what happens to secure routes.

    All three numbers are fractions of the source population, with the
    downgraded/immune/other splits averaged over the attacker set.
    """

    destination: int
    #: fraction of sources with secure routes under normal conditions,
    #: averaged over attacks (each attack excludes the attacker itself,
    #: so the three splits below sum exactly to this bar).
    secure_normal_fraction: float
    #: average fraction lost to protocol downgrade attacks.
    downgraded_fraction: float
    #: average fraction of retained secure routes at *immune* sources —
    #: ASes that would have avoided the attack even with S = ∅.
    retained_immune_fraction: float
    #: average fraction of retained secure routes at non-immune sources.
    retained_other_fraction: float


def secure_route_fate(
    topology: ASGraph | RoutingContext,
    destination: int,
    attackers: Sequence[int],
    deployment: Deployment,
    model: RankModel,
) -> SecureRouteFate:
    """Figure 13 analysis for one destination, averaged over attackers."""
    ctx = topology if isinstance(topology, RoutingContext) else RoutingContext(topology)
    normal_outcome = compute_routing_outcome(
        ctx, destination, attacker=None, deployment=deployment, model=model
    )
    num_sources = ctx.n - 1
    secure_normal = normal_outcome.secure_sources()
    if num_sources == 0 or not attackers:
        return SecureRouteFate(destination, 0.0, 0.0, 0.0, 0.0)

    secure_normal_sum = 0.0
    downgraded_sum = 0.0
    retained_immune_sum = 0.0
    retained_other_sum = 0.0
    used = 0
    for attacker in attackers:
        if attacker == destination:
            continue
        used += 1
        analysis = downgrade_analysis(
            ctx, attacker, destination, deployment, model, normal_outcome
        )
        partitions = compute_partitions(ctx, attacker, destination, model)
        immune = partitions.members(Category.IMMUNE)
        retained = analysis.retained
        secure_normal_sum += len(analysis.secure_normal)
        downgraded_sum += len(analysis.downgraded)
        retained_immune_sum += len(retained & immune)
        retained_other_sum += len(retained - immune)
    if used == 0:
        return SecureRouteFate(destination, len(secure_normal) / num_sources, 0.0, 0.0, 0.0)
    scale = 1.0 / (used * num_sources)
    return SecureRouteFate(
        destination=destination,
        secure_normal_fraction=secure_normal_sum * scale,
        downgraded_fraction=downgraded_sum * scale,
        retained_immune_fraction=retained_immune_sum * scale,
        retained_other_fraction=retained_other_sum * scale,
    )
