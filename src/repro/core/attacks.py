"""Pluggable attacker strategies: *how* the bogus announcement enters routing.

The paper evaluates ``H_{M,D}(S)`` under one canonical threat model: the
attacker ``m`` announces the bogus one-hop path ``"m d"`` via legacy BGP
to all of its neighbors (Section 3.1).  Follow-up work shows that the
*ranking of deployment strategies* is sensitive to this choice — it can
flip under different attack shapes ("Ain't How You Deploy",
arXiv:2408.15970) and under forged-origin hijacks that carry
valid-looking security attributes and therefore survive ROV-era
filtering (arXiv:2606.23071).  This module makes the attack shape a
first-class, pluggable input instead of a constant baked into the
routing engines.

An :class:`AttackStrategy` pins four knobs of the attacker's
announcement, expressed in engine terms by a :class:`ResolvedAttack`:

* ``length`` — the AS-path length the attacker *claims* (its neighbors
  rank the route at ``length + 1``);
* ``wire`` — whether the announcement carries valid-looking security
  attributes, i.e. whether S*BGP-ranking receivers perceive it as
  secure (normal propagation rules still apply downstream: a
  non-signing AS re-announces without attributes);
* ``export_all`` — whether every neighbor hears it (the classic
  attraction attack) or only customers (a stealthier export scope);
* ``active`` — whether the attacker announces anything at all (an
  honest attacker with no route to the victim stays silent).

Some strategies depend on the attacker's *own* routing state under
normal conditions — e.g. the honest announcement re-uses the attacker's
legitimate route — so :meth:`AttackStrategy.resolve` optionally receives
an :class:`AttackerBaseline` describing that state (engines supply it
when :attr:`AttackStrategy.needs_baseline` is set).

Every strategy has a canonical ``token`` used by the scenario plane
(:mod:`repro.experiments.scenarios`) to fold the threat model into the
content-addressed scenario hash, and by the CLI's ``--attack`` flag.

Examples:
    The paper-default hijack claims a direct customer link to the
    victim and is never signed:

    >>> ONE_HOP_HIJACK.resolve(dest_signed=True)
    ResolvedAttack(length=1, wire=False, export_all=True, active=True)

    The honest strategy re-announces the attacker's real route (here a
    signed 3-hop route) to *everyone* — traffic attraction without
    lying:

    >>> HONEST.resolve(
    ...     dest_signed=False,
    ...     baseline=AttackerBaseline(has_route=True, length=3, wire_secure=True),
    ... )
    ResolvedAttack(length=3, wire=True, export_all=True, active=True)

    An honest attacker with no route stays silent:

    >>> HONEST.resolve(dest_signed=False, baseline=NO_BASELINE_ROUTE).active
    False

    The forged-origin stealth hijack mimics the victim's security
    posture — its announcement looks exactly as valid as the real one:

    >>> FORGED_ORIGIN.resolve(dest_signed=True).wire
    True
    >>> FORGED_ORIGIN.resolve(dest_signed=False) == ONE_HOP_HIJACK.resolve(
    ...     dest_signed=False
    ... )
    True

    Tokens round-trip through the registry, including the parameterized
    path-padding family:

    >>> strategy_from_token("khop4")
    PathLengthHijack(k=4)
    >>> strategy_from_token("khop4").token
    'khop4'
    >>> [s.token for s in SHIPPED_STRATEGIES]
    ['hijack', 'honest', 'khop3', 'forged_origin']
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True)
class AttackerBaseline:
    """The attacker's own routing record under normal conditions.

    Attributes:
        has_route: False when the attacker cannot reach the victim at
            all under normal conditions (disconnected inputs).
        length: AS-path length of the attacker's legitimate best route
            (meaningless when ``has_route`` is False).
        wire_secure: whether the announcement the attacker would
            legitimately propagate is fully signed — i.e. its own best
            route arrived signed *and* the attacker participates in
            S*BGP signing.
    """

    has_route: bool
    length: int = 0
    wire_secure: bool = False


#: Shared "the attacker has no route" baseline.
NO_BASELINE_ROUTE = AttackerBaseline(has_route=False)


@dataclass(frozen=True)
class ResolvedAttack:
    """Concrete per-``(m, d)`` attack parameters, in engine terms.

    This is what the routing engines actually consume: the attacker
    becomes a root claiming a path of ``length`` hops with (or without)
    valid-looking security attributes, heard by all neighbors or only
    by customers.  ``active=False`` means the attacker announces
    nothing — the stable state is the attacker-free one, with the
    attacker still excluded from the source population.
    """

    length: int
    wire: bool
    export_all: bool
    active: bool = True

    def __post_init__(self) -> None:
        if self.active and self.length < 1:
            raise ValueError(
                f"an active attack must claim a path of length >= 1, "
                f"got {self.length}"
            )


#: The paper's canonical resolution: unsigned one-hop claim, heard by all.
DEFAULT_RESOLVED = ResolvedAttack(length=1, wire=False, export_all=True)

#: Resolution of a silent (inactive) attacker.
SILENT = ResolvedAttack(length=0, wire=False, export_all=True, active=False)


class AttackStrategy(ABC):
    """How an attacker shapes its announcement for one ``(m, d)`` attack.

    Subclasses are small frozen dataclasses so strategies are hashable,
    picklable (they ride along with fork-pool tasks) and comparable.
    The engines call :meth:`resolve` once per ``(m, d)`` pair — with the
    attacker's normal-conditions record when :attr:`needs_baseline` is
    set — and then run the ordinary fixing pass with the attacker as a
    root parameterized by the returned :class:`ResolvedAttack`.
    """

    #: Canonical identity token; part of every scenario hash.
    token: str = ""
    #: True if :meth:`resolve` needs the attacker's normal-conditions
    #: record (engines then run/consult an attacker-free pass first).
    needs_baseline: bool = False

    @abstractmethod
    def resolve(
        self, dest_signed: bool, baseline: AttackerBaseline | None = None
    ) -> ResolvedAttack:
        """Resolve the strategy for one pair.

        Args:
            dest_signed: whether the victim destination participates in
                S*BGP signing (its legitimate announcement is signed).
            baseline: the attacker's own normal-conditions record; only
                supplied (and only required) when :attr:`needs_baseline`
                is True.
        """


@dataclass(frozen=True)
class OneHopHijack(AttackStrategy):
    """The paper's Section 3.1 attack: announce ``"m d"`` via legacy BGP.

    The attacker claims a direct link to the victim — a path one hop
    longer than the truth — with no security attributes, to every
    neighbor.  This is the default threat model everywhere.
    """

    token = "hijack"

    def resolve(
        self, dest_signed: bool, baseline: AttackerBaseline | None = None
    ) -> ResolvedAttack:
        return DEFAULT_RESOLVED


@dataclass(frozen=True)
class HonestAnnouncement(AttackStrategy):
    """Traffic attraction without lying: export the real route to everyone.

    The attacker keeps its legitimate best route to the victim and
    announces it to *all* neighbors, violating only the export rule
    ``Ex`` (providers and peers hear a route they should never have
    seen, and rank it as a customer route).  The claimed length and the
    security attributes are genuine — a signed honest announcement
    stays attractive even to fully-deployed S*BGP neighbors, which is
    exactly why attraction attacks survive security-first rankings.
    With no route to the victim the attacker has nothing to announce
    and stays silent.
    """

    token = "honest"
    needs_baseline = True

    def resolve(
        self, dest_signed: bool, baseline: AttackerBaseline | None = None
    ) -> ResolvedAttack:
        if baseline is None:
            raise ValueError("the honest strategy requires the attacker baseline")
        if not baseline.has_route:
            return SILENT
        return ResolvedAttack(
            length=baseline.length,
            wire=baseline.wire_secure,
            export_all=True,
        )


@dataclass(frozen=True)
class PathLengthHijack(AttackStrategy):
    """A ``k``-hop claimed path: padding (k > 1) or the classic lie (k = 1).

    The attacker announces a fabricated path of ``k`` hops ending at the
    victim, unsigned, to every neighbor.  ``k = 1`` is behaviorally
    identical to :class:`OneHopHijack` (but hashes as a distinct
    scenario); larger ``k`` models path-padding attacks that trade
    attraction power for stealth against length-anomaly monitors.
    """

    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"claimed path length must be >= 1, got {self.k}")

    @property
    def token(self) -> str:  # type: ignore[override]
        return f"khop{self.k}"

    def resolve(
        self, dest_signed: bool, baseline: AttackerBaseline | None = None
    ) -> ResolvedAttack:
        return ResolvedAttack(length=self.k, wire=False, export_all=True)


@dataclass(frozen=True)
class ForgedOriginHijack(AttackStrategy):
    """Forged-origin stealth hijack: the lie mimics the victim's security.

    The attacker announces the one-hop path ``"m d"`` keeping the
    victim as the claimed origin *and* dressing the announcement in
    security attributes indistinguishable from the victim's own
    (origin-validation filtering passes: the origin is genuinely
    authorized).  In engine terms the bogus announcement leaves the
    attacker exactly as wire-secure as the victim's legitimate one —
    if the victim signs, ranking receivers see a valid-looking secure
    route; if the victim does not, this degenerates to the classic
    hijack.  Models the ROV-era stealth hijacks of arXiv:2606.23071.
    """

    token = "forged_origin"

    def resolve(
        self, dest_signed: bool, baseline: AttackerBaseline | None = None
    ) -> ResolvedAttack:
        return ResolvedAttack(length=1, wire=bool(dest_signed), export_all=True)


#: Ready-made strategy instances.
ONE_HOP_HIJACK = OneHopHijack()
HONEST = HonestAnnouncement()
FORGED_ORIGIN = ForgedOriginHijack()

#: The default threat model everywhere (the paper's Section 3.1 attack).
DEFAULT_ATTACK = ONE_HOP_HIJACK
DEFAULT_ATTACK_TOKEN = DEFAULT_ATTACK.token

#: The strategies shipped with the attacks experiment, in display order
#: (``khop3`` represents the path-padding family).
SHIPPED_STRATEGIES: tuple[AttackStrategy, ...] = (
    ONE_HOP_HIJACK,
    HONEST,
    PathLengthHijack(3),
    FORGED_ORIGIN,
)

_FIXED_STRATEGIES: dict[str, AttackStrategy] = {
    ONE_HOP_HIJACK.token: ONE_HOP_HIJACK,
    HONEST.token: HONEST,
    FORGED_ORIGIN.token: FORGED_ORIGIN,
}


def strategy_from_token(token: str) -> AttackStrategy:
    """Parse a canonical strategy token back into a strategy.

    Accepts the fixed tokens (``hijack``, ``honest``, ``forged_origin``)
    plus the parameterized ``khop<k>`` family.
    """
    fixed = _FIXED_STRATEGIES.get(token)
    if fixed is not None:
        return fixed
    if token.startswith("khop"):
        try:
            k = int(token[4:])
        except ValueError:
            raise ValueError(f"unparseable attack token {token!r}") from None
        return PathLengthHijack(k)
    raise ValueError(
        f"unknown attack token {token!r}; expected one of "
        f"{sorted(_FIXED_STRATEGIES)} or 'khop<k>'"
    )
