"""Partial-deployment S*BGP routing outcomes (Section 3, Appendix B).

This module computes, for one destination ``d``, an optional attacker
``m`` announcing the bogus path ``"m d"`` via legacy BGP (Section 3.1), a
deployment ``S`` and a routing-policy model, the stable routing state
that Theorem 2.1 guarantees to exist and be unique.

Appendix B describes the computation as a family of staged breadth-first
searches (FSCR / FCR / FSPeeR / FPeeR / FSPrvR / FPrvR, one ordering per
security model).  We implement all of them with a single Dijkstra-style
*fixing* pass over the model's rank key (:mod:`repro.core.rank`):

* the key of a route is strictly larger than the key of the route it
  extends (monotonicity, proven in ``tests/test_rank.py``), so fixing
  ASes in global key order is exactly the staged-BFS order;
* the export rule ``Ex`` is applied on every relaxation;
* all equally-best routes are retained, so each AS ends with its ``BPR``
  set: the routes preferred before the tiebreak step ``TB``.

Following Section 4.1 we do not guess tiebreaks.  Each AS records which
endpoints its BPR set can reach (``DEST``, ``ATTACKER`` or both); the
``BOTH`` state is the "knife's edge" population that the metric's upper
and lower bounds disagree on.  A deterministic tiebreak (lowest next-hop
ASN) is also tracked so outcomes can be cross-validated against the
message-passing simulator in :mod:`repro.bgpsim`.

**Engine layout.**  The paper's headline metric averages one such
computation per (attacker, destination) pair over ``O(|V|²)`` pairs
(Appendix H ran them on supercomputers), so the per-pair constant factor
governs the cost of every figure.  :class:`RoutingContext` therefore
maps ASNs onto dense indices ``0..n-1`` once per graph and stores the
adjacency as flat CSR buffers (``adj_start``/``adj_node`` arrays plus
``adj_class``/``adj_custflag`` bytearrays); the fixing pass runs
entirely in index space over *reusable scratch buffers* owned by the
context — key/length/reach/secure arrays are reset between pairs
instead of reallocated, rank keys are packed machine-word ints
(:func:`repro.core.rank.pack_key`) instead of tuples, and heap entries
pack ``(key, index)`` into a single int.  :class:`RouteInfo` and the
per-AS mapping :attr:`RoutingOutcome.routes` are preserved as a thin
lazily-materialized view over the flat result arrays, so callers keep
the seed API.  :func:`batch_outcomes` and the count-only fast paths
amortize deployment-mask construction across whole pair sweeps.  The
original dict-based engine survives verbatim in
:mod:`repro.core.refimpl` for differential testing.

The context's scratch buffers make routing computations *not*
thread-safe per context; fork-based multiprocessing (the experiment
runner's strategy) is safe because each worker gets its own
copy-on-write context.
"""

from __future__ import annotations

import enum
import heapq
from array import array
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..topology.graph import ASGraph
from ..topology.relationships import RouteClass

#: Version of the routing *semantics* (not the implementation).  Bump
#: whenever a change alters any routing outcome — tiebreak handling,
#: export rules, security attribution — so content-addressed caches of
#: evaluated scenarios (:mod:`repro.experiments.store`) invalidate
#: instead of silently serving pre-change results.  Pure performance
#: rewrites that reproduce the golden fixtures bit-for-bit must NOT
#: bump it.
ENGINE_VERSION = 1
from .deployment import Deployment
from .rank import BASELINE, PACK_SHIFT, RankKey, RankModel

_IDX_MASK = (1 << PACK_SHIFT) - 1
#: Larger than any packed rank key (keys use 3 * PACK_SHIFT = 63 bits).
_INF = 1 << 66

#: Shared empty deployment so default-argument calls hit the mask cache.
_EMPTY_DEPLOYMENT = Deployment.empty()


class Reach(enum.IntFlag):
    """Which endpoints an AS's equally-best routes lead to."""

    NONE = 0
    DEST = 1
    ATTACKER = 2
    BOTH = 3


@dataclass(frozen=True)
class RouteInfo:
    """The fixed routing state of one AS for one (m, d, S) computation.

    Attributes:
        route_class: LP class of the best routes (None for d and m).
        length: AS-path length of the best routes (0 for d, 1 for m —
            the attacker claims a direct link to the destination).
        key: the model's rank key of the best routes (None for roots).
        next_hops: every neighbor realizing a best route (the BPR set).
        reaches: union of endpoints over the BPR set; ``BOTH`` means the
            AS's fate rests on its intradomain tiebreak (Section 4.1).
        secure: True if the best routes are secure *for this AS* — it
            runs full S*BGP and the routes were signed end-to-end.
        wire_secure: True if the announcement this AS propagates is
            fully signed (used when its neighbors rank the route).
        choice: next hop under the deterministic lowest-ASN tiebreak.
        endpoint: traffic destination under that tiebreak.
    """

    route_class: RouteClass | None
    length: int
    key: RankKey | None
    next_hops: tuple[int, ...]
    reaches: Reach
    secure: bool
    wire_secure: bool
    choice: int | None
    endpoint: Reach


class RoutingContext:
    """Dense-indexed adjacency plus reusable scratch for routing passes.

    Build once per graph.  ASNs are mapped onto contiguous indices
    ``0..n-1`` via :meth:`ASGraph.dense_index` (sorted-ASN order, so
    index tiebreaks equal ASN tiebreaks).  The adjacency is stored as
    flat CSR buffers:

    * ``adj_start`` — ``array('l')`` of length ``n + 1``; node ``u``'s
      out-edges occupy slots ``adj_start[u]:adj_start[u+1]``;
    * ``adj_node`` — ``array('l')`` of neighbor indices;
    * ``adj_class`` — bytearray; the LP class the *neighbor* assigns to
      a route learned from ``u``;
    * ``adj_custflag`` — bytearray; 1 iff the neighbor is a customer of
      ``u`` (the export rule lets non-customer routes flow only there).

    Per-relationship index adjacency (``providers_idx`` etc.) serves
    the perceivable-closure and partition computations.  The context
    never mutates the graph; it also owns the scratch buffers of the
    fixing pass, which makes a single context not thread-safe (fork
    workers each get a copy-on-write clone, which is safe).
    """

    __slots__ = (
        "graph",
        "asns",
        "index_of",
        "n",
        "adj_start",
        "adj_node",
        "adj_class",
        "adj_custflag",
        "providers_idx",
        "customers_idx",
        "peers_idx",
        "_edges",
        "_neighbor_dicts",
        "_out_edges",
        "_mask_cache",
        "_zero_mask",
        "_fixed",
        "_key",
        "_cls",
        "_len",
        "_reach",
        "_wire",
        "_sec",
        "_choice",
        "_endpoint",
        "_nhops",
        "_key_init",
        "_zeros",
        "_choice_init",
        "_nhops_init",
        "_last_counts",
    )

    def __init__(self, graph: ASGraph) -> None:
        self.graph = graph
        asn_of, index_of = graph.dense_index()
        n = len(asn_of)
        if n >= 1 << PACK_SHIFT:
            raise ValueError(
                f"graph has {n} ASes; the packed-key engine supports up to "
                f"{(1 << PACK_SHIFT) - 1}"
            )
        # Copy: dense_index's lists are shared graph-wide caches, and
        # ctx.asns has always been safe for callers to mutate.
        self.asns: list[int] = list(asn_of)
        self.index_of: dict[int, int] = index_of
        self.n = n

        providers_idx: list[tuple[int, ...]] = []
        customers_idx: list[tuple[int, ...]] = []
        peers_idx: list[tuple[int, ...]] = []
        adj_start = array("l", [0])
        adj_node = array("l")
        adj_class = bytearray()
        adj_custflag = bytearray()
        edges: list[list[int]] = []
        cust = int(RouteClass.CUSTOMER)
        peer = int(RouteClass.PEER)
        prov = int(RouteClass.PROVIDER)
        for u, asn in enumerate(asn_of):
            providers = sorted(index_of[p] for p in graph.providers(asn))
            peers = sorted(index_of[q] for q in graph.peers(asn))
            customers = sorted(index_of[c] for c in graph.customers(asn))
            providers_idx.append(tuple(providers))
            peers_idx.append(tuple(peers))
            customers_idx.append(tuple(customers))
            packed: list[int] = []
            # A provider p sees a route via its customer u as a customer
            # route; a peer sees a peer route; a customer a provider route.
            for p in providers:
                adj_node.append(p)
                adj_class.append(cust)
                adj_custflag.append(0)
                packed.append((p << 3) | (cust << 1))
            for q in peers:
                adj_node.append(q)
                adj_class.append(peer)
                adj_custflag.append(0)
                packed.append((q << 3) | (peer << 1))
            for c in customers:
                adj_node.append(c)
                adj_class.append(prov)
                adj_custflag.append(1)
                packed.append((c << 3) | (prov << 1) | 1)
            adj_start.append(len(adj_node))
            edges.append(packed)
        self.adj_start = adj_start
        self.adj_node = adj_node
        self.adj_class = adj_class
        self.adj_custflag = adj_custflag
        self.providers_idx = providers_idx
        self.customers_idx = customers_idx
        self.peers_idx = peers_idx
        #: hot-loop adjacency: per-node lists of ``(v << 3)|(class << 1)|cust``.
        self._edges = edges
        self._neighbor_dicts: tuple[dict, dict, dict] | None = None
        self._out_edges: dict | None = None
        self._mask_cache: dict = {}
        self._zero_mask = bytearray(n)

        # Scratch buffers, reset (not reallocated) between pairs.
        self._fixed = bytearray(n)
        self._key: list[int] = [_INF] * n
        self._cls = bytearray(n)
        self._len: list[int] = [0] * n
        self._reach = bytearray(n)
        self._wire = bytearray(n)
        self._sec = bytearray(n)
        self._choice: list[int] = [-1] * n
        self._endpoint = bytearray(n)
        self._nhops: list[list[int] | None] = [None] * n
        self._key_init = [_INF] * n
        self._zeros = bytes(n)
        self._choice_init = [-1] * n
        self._nhops_init: list[None] = [None] * n
        self._last_counts: tuple[int, int, int, int, int, int] = (0,) * 6

    # ------------------------------------------------------------------
    # ASN-keyed compatibility views (built lazily; the engine itself
    # works in index space)
    # ------------------------------------------------------------------
    def _relationship_dicts(self) -> tuple[dict, dict, dict]:
        built = self._neighbor_dicts
        if built is None:
            asn_of = self.asns
            providers_of = {}
            customers_of = {}
            peers_of = {}
            for u, asn in enumerate(asn_of):
                providers_of[asn] = tuple(asn_of[i] for i in self.providers_idx[u])
                customers_of[asn] = tuple(asn_of[i] for i in self.customers_idx[u])
                peers_of[asn] = tuple(asn_of[i] for i in self.peers_idx[u])
            built = self._neighbor_dicts = (providers_of, customers_of, peers_of)
        return built

    @property
    def providers_of(self) -> dict[int, tuple[int, ...]]:
        """ASN → sorted provider ASNs (compatibility view)."""
        return self._relationship_dicts()[0]

    @property
    def customers_of(self) -> dict[int, tuple[int, ...]]:
        """ASN → sorted customer ASNs (compatibility view)."""
        return self._relationship_dicts()[1]

    @property
    def peers_of(self) -> dict[int, tuple[int, ...]]:
        """ASN → sorted peer ASNs (compatibility view)."""
        return self._relationship_dicts()[2]

    @property
    def out_edges(self) -> dict[int, tuple[tuple[int, int, bool], ...]]:
        """ASN-keyed adjacency ``(v, class_for_v, v_is_customer)`` view."""
        built = self._out_edges
        if built is None:
            asn_of = self.asns
            built = {}
            for u, asn in enumerate(asn_of):
                built[asn] = tuple(
                    (asn_of[e >> 3], (e >> 1) & 3, bool(e & 1))
                    for e in self._edges[u]
                )
            self._out_edges = built
        return built

    # ------------------------------------------------------------------
    # Deployment masks
    # ------------------------------------------------------------------
    def deployment_masks(self, deployment: Deployment) -> tuple[bytearray, bytearray]:
        """``(signing, ranking)`` membership masks over dense indices.

        Cached per deployment object (identity-keyed with a strong
        reference, so ids cannot be recycled) because mask construction
        is O(n) while a batched sweep reuses the same deployment for
        thousands of pairs.  Deployment members absent from the graph
        are ignored, matching the seed engine's set-membership checks.
        """
        if deployment.size == 0:
            zero = self._zero_mask
            return zero, zero
        cache = self._mask_cache
        entry = cache.get(id(deployment))
        if entry is not None and entry[0] is deployment:
            return entry[1], entry[2]
        index_of = self.index_of
        signing = bytearray(self.n)
        ranking = bytearray(self.n)
        get = index_of.get
        for asn in deployment.full:
            i = get(asn)
            if i is not None:
                signing[i] = 1
                ranking[i] = 1
        for asn in deployment.simplex:
            i = get(asn)
            if i is not None:
                signing[i] = 1
        if len(cache) >= 8:
            cache.clear()
        cache[id(deployment)] = (deployment, signing, ranking)
        return signing, ranking

    # ------------------------------------------------------------------
    # The fixing pass
    # ------------------------------------------------------------------
    def _check_pair(self, destination: int, attacker: int | None) -> tuple[int, int]:
        dest_i = self.index_of.get(destination)
        if dest_i is None:
            raise ValueError(f"destination AS {destination} not in graph")
        if attacker is None:
            return dest_i, -1
        att_i = self.index_of.get(attacker)
        if att_i is None:
            raise ValueError(f"attacker AS {attacker} not in graph")
        if att_i == dest_i:
            raise ValueError("attacker and destination must differ")
        return dest_i, att_i

    def _run(
        self,
        dest_i: int,
        att_i: int,
        signing: bytearray,
        ranking: bytearray,
        model: RankModel,
    ) -> None:
        """Run one fixing pass over the scratch buffers (``att_i = -1``
        for normal conditions).  Results live in the scratch arrays and
        :attr:`_last_counts` until the next run."""
        n = self.n
        fixed = self._fixed
        key_l = self._key
        cls_b = self._cls
        len_l = self._len
        reach_b = self._reach
        wire_b = self._wire
        sec_b = self._sec
        choice_l = self._choice
        endp_b = self._endpoint
        nhops = self._nhops
        # Zero-fill / re-init between pairs instead of reallocating.
        fixed[:] = self._zeros
        key_l[:] = self._key_init
        reach_b[:] = self._zeros
        wire_b[:] = self._zeros
        sec_b[:] = self._zeros
        endp_b[:] = self._zeros
        choice_l[:] = self._choice_init
        nhops[:] = self._nhops_init

        coeffs = model.packed_coeffs()
        if coeffs is not None:
            cm, lm, sm = coeffs
            key_fn = None
        else:
            cm = lm = sm = 0
            key_fn = model.packed_key
        uses_sec = model.uses_security

        edges = self._edges
        heap: list[int] = []
        push = heapq.heappush
        pop = heapq.heappop

        def relax(u: int, exports_all: bool, ln: int, wire_u: int, reach_u: int) -> None:
            for e in edges[u]:
                v = e >> 3
                if fixed[v] or not (exports_all or (e & 1)):
                    continue
                vcls = (e >> 1) & 3
                if key_fn is None:
                    k = vcls * cm + ln * lm + (0 if (wire_u and ranking[v]) else sm)
                else:
                    k = key_fn(RouteClass(vcls), ln, bool(wire_u and ranking[v]))
                cur = key_l[v]
                if k < cur:
                    key_l[v] = k
                    cls_b[v] = vcls
                    len_l[v] = ln
                    reach_b[v] = reach_u
                    wire_b[v] = wire_u
                    nhops[v] = [u]
                    push(heap, (k << PACK_SHIFT) | v)
                elif k == cur:
                    nhops[v].append(u)  # type: ignore[union-attr]
                    reach_b[v] |= reach_u
                    if not wire_u:
                        wire_b[v] = 0

        # Roots: the destination originates the prefix; the attacker
        # originates the bogus one-hop-longer "m d" via legacy BGP.
        dest_signed = 1 if signing[dest_i] else 0
        fixed[dest_i] = 1
        len_l[dest_i] = 0
        reach_b[dest_i] = 1
        endp_b[dest_i] = 1
        wire_b[dest_i] = dest_signed
        sec_b[dest_i] = dest_signed
        remaining = n - 1
        if att_i >= 0:
            fixed[att_i] = 1
            len_l[att_i] = 1
            reach_b[att_i] = 2
            endp_b[att_i] = 2
            remaining -= 1
        relax(dest_i, True, 1, dest_signed, 1)
        if att_i >= 0:
            relax(att_i, True, 2, 0, 2)

        happy_lo = happy_up = att_lo = att_up = secure_n = nfixed = 0
        while heap:
            entry = pop(heap)
            v = entry & _IDX_MASK
            if fixed[v] or (entry >> PACK_SHIFT) != key_l[v]:
                continue  # already fixed, or a stale heap entry
            nh = nhops[v]
            ch = nh[0] if len(nh) == 1 else min(nh)  # type: ignore[index, arg-type]
            choice_l[v] = ch
            endp_b[v] = endp_b[ch]
            w = wire_b[v]
            s = 0
            if w:
                # "uses a secure route" is only meaningful when the model
                # ranks security: a baseline-model AS treats every route
                # as insecure even if the announcement arrived signed.
                if uses_sec and ranking[v]:
                    sec_b[v] = s = 1
                if not signing[v]:
                    wire_b[v] = 0  # v re-announces without a signature
            fixed[v] = 1
            nfixed += 1
            secure_n += s
            r = reach_b[v]
            if r == 1:
                happy_lo += 1
                happy_up += 1
            elif r == 2:
                att_lo += 1
                att_up += 1
            else:  # BOTH: the knife's edge population
                happy_up += 1
                att_up += 1
            remaining -= 1
            if remaining == 0:
                break
            relax(v, cls_b[v] == 0, len_l[v] + 1, wire_b[v], r)

        self._last_counts = (happy_lo, happy_up, att_lo, att_up, secure_n, nfixed)

    def _snapshot(
        self,
        destination: int,
        attacker: int | None,
        deployment: Deployment,
        model: RankModel,
        dest_i: int,
        att_i: int,
    ) -> "RoutingOutcome":
        return RoutingOutcome(
            destination=destination,
            attacker=attacker,
            deployment=deployment,
            model=model,
            _ctx=self,
            _dest_i=dest_i,
            _att_i=att_i,
            _fixed=bytes(self._fixed),
            _cls=bytes(self._cls),
            _len=list(self._len),
            _reach=bytes(self._reach),
            _wire=bytes(self._wire),
            _sec=bytes(self._sec),
            _choice=list(self._choice),
            _endpoint=bytes(self._endpoint),
            _nhops=list(self._nhops),
            _counts=self._last_counts,
        )


def _as_context(topology: ASGraph | RoutingContext) -> RoutingContext:
    if isinstance(topology, RoutingContext):
        return topology
    return RoutingContext(topology)


class _RouteView(Mapping):
    """Lazy ``{asn: RouteInfo}`` mapping over the flat result arrays.

    RouteInfo objects are materialized (and memoized) only for the ASes
    a caller actually touches; aggregate queries on
    :class:`RoutingOutcome` never build any.
    """

    __slots__ = ("_outcome", "_cache")

    def __init__(self, outcome: "RoutingOutcome") -> None:
        self._outcome = outcome
        self._cache: dict[int, RouteInfo] = {}

    def __getitem__(self, asn: int) -> RouteInfo:
        info = self._cache.get(asn)
        if info is not None:
            return info
        o = self._outcome
        i = o._ctx.index_of.get(asn)
        if i is None or not o._fixed[i]:
            raise KeyError(asn)
        info = o._build_info(i)
        self._cache[asn] = info
        return info

    def __contains__(self, asn: object) -> bool:
        o = self._outcome
        i = o._ctx.index_of.get(asn)  # type: ignore[arg-type]
        return i is not None and bool(o._fixed[i])

    def __iter__(self) -> Iterator[int]:
        o = self._outcome
        fixed = o._fixed
        asn_of = o._ctx.asns
        for i in range(o._ctx.n):
            if fixed[i]:
                yield asn_of[i]

    def __len__(self) -> int:
        o = self._outcome
        return o._counts[5] + (2 if o._att_i >= 0 else 1)


class RoutingOutcome:
    """The stable state for one ``(destination, attacker, S, model)``.

    Backed by flat per-index arrays snapshotted from the engine's
    scratch buffers; :attr:`routes` is a lazily-materialized
    :class:`RouteInfo` view kept for API compatibility.  ASes with no
    route at all (possible on disconnected inputs) are absent from
    :attr:`routes`.
    """

    __slots__ = (
        "destination",
        "attacker",
        "deployment",
        "model",
        "_ctx",
        "_dest_i",
        "_att_i",
        "_fixed",
        "_cls",
        "_len",
        "_reach",
        "_wire",
        "_sec",
        "_choice",
        "_endpoint",
        "_nhops",
        "_counts",
        "_routes",
    )

    def __init__(
        self,
        destination: int,
        attacker: int | None,
        deployment: Deployment,
        model: RankModel,
        _ctx: RoutingContext,
        _dest_i: int,
        _att_i: int,
        _fixed: bytes,
        _cls: bytes,
        _len: list[int],
        _reach: bytes,
        _wire: bytes,
        _sec: bytes,
        _choice: list[int],
        _endpoint: bytes,
        _nhops: list,
        _counts: tuple[int, int, int, int, int, int],
    ) -> None:
        self.destination = destination
        self.attacker = attacker
        self.deployment = deployment
        self.model = model
        self._ctx = _ctx
        self._dest_i = _dest_i
        self._att_i = _att_i
        self._fixed = _fixed
        self._cls = _cls
        self._len = _len
        self._reach = _reach
        self._wire = _wire
        self._sec = _sec
        self._choice = _choice
        self._endpoint = _endpoint
        self._nhops = _nhops
        self._counts = _counts
        self._routes: _RouteView | None = None

    @property
    def total_ases(self) -> int:
        return self._ctx.n

    @property
    def routes(self) -> _RouteView:
        view = self._routes
        if view is None:
            view = self._routes = _RouteView(self)
        return view

    def _build_info(self, i: int) -> RouteInfo:
        ctx = self._ctx
        asn_of = ctx.asns
        if i == self._dest_i:
            signed = bool(self._sec[i])
            return RouteInfo(
                route_class=None,
                length=0,
                key=None,
                next_hops=(),
                reaches=Reach.DEST,
                secure=signed,
                wire_secure=signed,
                choice=None,
                endpoint=Reach.DEST,
            )
        if i == self._att_i:
            return RouteInfo(
                route_class=None,
                length=1,  # the bogus announcement "m d" is one hop longer
                key=None,
                next_hops=(),
                reaches=Reach.ATTACKER,
                secure=False,
                wire_secure=False,  # legacy BGP: recipients cannot validate
                choice=None,
                endpoint=Reach.ATTACKER,
            )
        route_class = RouteClass(self._cls[i])
        length = self._len[i]
        secure = bool(self._sec[i])
        # The rank-time security bit equals the stored secure bit for
        # security-aware models and is ignored by the baseline key, so
        # the tuple key reconstructs exactly.
        return RouteInfo(
            route_class=route_class,
            length=length,
            key=self.model.key(route_class, length, secure),
            next_hops=tuple(asn_of[j] for j in sorted(self._nhops[i])),
            reaches=Reach(self._reach[i]),
            secure=secure,
            wire_secure=bool(self._wire[i]),
            choice=asn_of[self._choice[i]],
            endpoint=Reach(self._endpoint[i]),
        )

    # -- source enumeration ------------------------------------------------
    @property
    def num_sources(self) -> int:
        """|V| minus the destination and (if present) the attacker."""
        return self._ctx.n - (2 if self.attacker is not None else 1)

    def is_source(self, asn: int) -> bool:
        return asn != self.destination and asn != self.attacker

    def sources(self) -> Iterator[int]:
        """All fixed ASes other than the roots."""
        fixed = self._fixed
        asn_of = self._ctx.asns
        dest_i = self._dest_i
        att_i = self._att_i
        for i in range(self._ctx.n):
            if fixed[i] and i != dest_i and i != att_i:
                yield asn_of[i]

    # -- per-AS predicates -------------------------------------------------
    def _index(self, asn: int) -> int | None:
        i = self._ctx.index_of.get(asn)
        if i is None or not self._fixed[i]:
            return None
        return i

    def reaches(self, asn: int) -> Reach:
        i = self._index(asn)
        return Reach(self._reach[i]) if i is not None else Reach.NONE

    def happy_lower(self, asn: int) -> bool:
        """Happy under adversarial tiebreaking (all BPR routes legit)."""
        i = self._index(asn)
        return i is not None and self._reach[i] == 1

    def happy_upper(self, asn: int) -> bool:
        """Happy under friendly tiebreaking (some BPR route is legit)."""
        i = self._index(asn)
        return i is not None and bool(self._reach[i] & 1)

    def uses_secure_route(self, asn: int) -> bool:
        """True if the AS's best routes are secure (it validates them)."""
        i = self._index(asn)
        return i is not None and bool(self._sec[i])

    # -- aggregate counts --------------------------------------------------
    def count_happy(self) -> tuple[int, int]:
        """(lower bound, upper bound) on the number of happy sources."""
        return self._counts[0], self._counts[1]

    def count_attacked(self) -> tuple[int, int]:
        """(lower, upper) bounds on sources routing to the attacker."""
        return self._counts[2], self._counts[3]

    def count_secure_sources(self) -> int:
        """Sources whose best routes are secure."""
        return self._counts[4]

    def secure_sources(self) -> frozenset[int]:
        """The sources of :meth:`count_secure_sources`, as ASNs."""
        sec = self._sec
        asn_of = self._ctx.asns
        dest_i = self._dest_i
        att_i = self._att_i
        return frozenset(
            asn_of[i]
            for i in range(self._ctx.n)
            if sec[i] and i != dest_i and i != att_i
        )

    # -- concrete (deterministic tiebreak) view ----------------------------
    def concrete_endpoint(self, asn: int) -> Reach:
        i = self._index(asn)
        return Reach(self._endpoint[i]) if i is not None else Reach.NONE

    def concrete_path(self, asn: int) -> tuple[int, ...]:
        """The physical AS path under the deterministic tiebreak.

        For attacked routes the path ends at the attacker (where traffic
        actually terminates), not at the claimed destination.
        """
        i = self._index(asn)
        if i is None:
            return ()
        asn_of = self._ctx.asns
        choice = self._choice
        path = [asn_of[i]]
        seen = {i}
        while True:
            i = choice[i]
            if i < 0:
                return tuple(path)
            if i in seen:  # pragma: no cover - defended against, impossible
                raise RuntimeError(f"routing loop through AS {asn_of[i]}")
            seen.add(i)
            path.append(asn_of[i])


def compute_routing_outcome(
    topology: ASGraph | RoutingContext,
    destination: int,
    attacker: int | None = None,
    deployment: Deployment | None = None,
    model: RankModel = BASELINE,
) -> RoutingOutcome:
    """Compute the unique stable routing state (Theorem 2.1).

    Args:
        topology: the AS graph, or a prebuilt :class:`RoutingContext`
            (build one when calling repeatedly on the same graph).
        destination: the victim AS ``d`` originating the prefix.
        attacker: the AS ``m`` announcing the bogus path ``"m d"`` via
            legacy BGP to all its neighbors (Section 3.1); None for
            normal conditions.
        deployment: the secure set ``S``; defaults to ``S = ∅``.
        model: the routing-policy model; defaults to the baseline
            (origin authentication only).

    Returns:
        A :class:`RoutingOutcome`.
    """
    ctx = _as_context(topology)
    deployment = deployment or _EMPTY_DEPLOYMENT
    dest_i, att_i = ctx._check_pair(destination, attacker)
    signing, ranking = ctx.deployment_masks(deployment)
    ctx._run(dest_i, att_i, signing, ranking, model)
    return ctx._snapshot(destination, attacker, deployment, model, dest_i, att_i)


def normal_conditions(
    topology: ASGraph | RoutingContext,
    destination: int,
    deployment: Deployment | None = None,
    model: RankModel = BASELINE,
) -> RoutingOutcome:
    """Routing to ``destination`` when nobody attacks (m = ∅)."""
    return compute_routing_outcome(
        topology, destination, attacker=None, deployment=deployment, model=model
    )


# ----------------------------------------------------------------------
# Batched evaluation
# ----------------------------------------------------------------------
def batch_outcomes(
    topology: ASGraph | RoutingContext,
    pairs: Sequence[tuple[int | None, int]],
    deployment: Deployment | None = None,
    model: RankModel = BASELINE,
) -> list[RoutingOutcome]:
    """Stable states for many ``(attacker, destination)`` pairs at once.

    Deployment masks are built once and the context's scratch buffers
    are reused across the whole sweep, which is the engine's intended
    hot path.  ``attacker`` may be None in a pair (normal conditions).
    Pair ordering matches the metric convention ``(m, d)``.
    """
    ctx = _as_context(topology)
    deployment = deployment or _EMPTY_DEPLOYMENT
    signing, ranking = ctx.deployment_masks(deployment)
    out: list[RoutingOutcome] = []
    for attacker, destination in pairs:
        dest_i, att_i = ctx._check_pair(destination, attacker)
        ctx._run(dest_i, att_i, signing, ranking, model)
        out.append(
            ctx._snapshot(destination, attacker, deployment, model, dest_i, att_i)
        )
    return out


def batch_happiness_counts(
    topology: ASGraph | RoutingContext,
    pairs: Sequence[tuple[int | None, int]],
    deployment: Deployment | None = None,
    model: RankModel = BASELINE,
) -> list[tuple[int, int, int]]:
    """``(happy_lower, happy_upper, num_sources)`` per ``(m, d)`` pair.

    The count-only fast path behind :func:`repro.core.metrics.security_metric`:
    no :class:`RoutingOutcome` is materialized and nothing is copied out
    of the scratch buffers — each pair costs one fixing pass plus a
    3-tuple.
    """
    ctx = _as_context(topology)
    deployment = deployment or _EMPTY_DEPLOYMENT
    signing, ranking = ctx.deployment_masks(deployment)
    n = ctx.n
    out: list[tuple[int, int, int]] = []
    for attacker, destination in pairs:
        dest_i, att_i = ctx._check_pair(destination, attacker)
        ctx._run(dest_i, att_i, signing, ranking, model)
        counts = ctx._last_counts
        out.append(
            (counts[0], counts[1], n - (2 if attacker is not None else 1))
        )
    return out
