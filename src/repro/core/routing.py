"""Partial-deployment S*BGP routing outcomes (Section 3, Appendix B).

This module computes, for one destination ``d``, an optional attacker
``m``, a deployment ``S`` and a routing-policy model, the stable
routing state that Theorem 2.1 guarantees to exist and be unique.  How
the attacker's announcement enters the computation — its claimed path
length, whether it carries valid-looking security attributes, which
neighbors hear it — is a pluggable :class:`repro.core.attacks.AttackStrategy`;
the default is the paper's Section 3.1 one-hop bogus path ``"m d"``
announced via legacy BGP to everyone.

Appendix B describes the computation as a family of staged breadth-first
searches (FSCR / FCR / FSPeeR / FPeeR / FSPrvR / FPrvR, one ordering per
security model).  We implement all of them with a single Dijkstra-style
*fixing* pass over the model's rank key (:mod:`repro.core.rank`):

* the key of a route is strictly larger than the key of the route it
  extends (monotonicity, proven in ``tests/test_rank.py``), so fixing
  ASes in global key order is exactly the staged-BFS order;
* the export rule ``Ex`` is applied on every relaxation;
* all equally-best routes are retained, so each AS ends with its ``BPR``
  set: the routes preferred before the tiebreak step ``TB``.

Following Section 4.1 we do not guess tiebreaks.  Each AS records which
endpoints its BPR set can reach (``DEST``, ``ATTACKER`` or both); the
``BOTH`` state is the "knife's edge" population that the metric's upper
and lower bounds disagree on.  A deterministic tiebreak (lowest next-hop
ASN) is also tracked so outcomes can be cross-validated against the
message-passing simulator in :mod:`repro.bgpsim`.

**Engine layout.**  The paper's headline metric averages one such
computation per (attacker, destination) pair over ``O(|V|²)`` pairs
(Appendix H ran them on supercomputers), so the per-pair constant factor
governs the cost of every figure.  :class:`RoutingContext` therefore
maps ASNs onto dense indices ``0..n-1`` once per graph and stores the
adjacency as flat CSR buffers (``adj_start``/``adj_node`` arrays plus
``adj_class``/``adj_custflag`` bytearrays); the fixing pass runs
entirely in index space over *reusable scratch buffers* owned by the
context — key/length/reach/secure arrays are reset between pairs
instead of reallocated, rank keys are packed machine-word ints
(:func:`repro.core.rank.pack_key`) instead of tuples, and heap entries
pack ``(key, index)`` into a single int.  :class:`RouteInfo` and the
per-AS mapping :attr:`RoutingOutcome.routes` are preserved as a thin
lazily-materialized view over the flat result arrays, so callers keep
the seed API.  :func:`batch_outcomes` and the count-only fast paths
amortize deployment-mask construction across whole pair sweeps, and
:class:`DestinationSweep` goes one step further for the metric's
destination-major workloads: the attacker-free fixing pass runs once
per destination and each attacker is evaluated by *delta re-fixing*
only the region of the graph whose routing record actually changes.
The original dict-based engine survives verbatim in
:mod:`repro.core.refimpl` for differential testing.

The context's scratch buffers make routing computations *not*
thread-safe per context; fork-based multiprocessing (the experiment
runner's strategy) is safe because each worker gets its own
copy-on-write context.
"""

from __future__ import annotations

import enum
import heapq
import weakref
from array import array
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..topology.graph import ASGraph
from ..topology.relationships import RouteClass

try:  # numpy backs the optional vectorized kernel and shared arenas;
    # both degrade to the pure-python paths when it is unavailable.
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

#: Version of the routing *semantics* (not the implementation).  Bump
#: whenever a change alters any routing outcome — tiebreak handling,
#: export rules, security attribution — so content-addressed caches of
#: evaluated scenarios (:mod:`repro.experiments.store`) invalidate
#: instead of silently serving pre-change results.  Pure performance
#: rewrites that reproduce the golden fixtures bit-for-bit must NOT
#: bump it.
ENGINE_VERSION = 1
from .attacks import (
    DEFAULT_ATTACK,
    DEFAULT_RESOLVED,
    AttackStrategy,
    AttackerBaseline,
    ResolvedAttack,
)
from .deployment import Deployment
from .rank import (
    BASELINE,
    PACK_SHIFT,
    SECURITY_FIRST,
    SECURITY_SECOND,
    SECURITY_THIRD,
    RankKey,
    RankModel,
    SecurityModel,
)

_IDX_MASK = (1 << PACK_SHIFT) - 1
#: Larger than any packed rank key (keys use 3 * PACK_SHIFT = 63 bits).
_INF = 1 << 66

#: int64-safe "no key" sentinel for the numpy scratch arrays.  ``_INF``
#: needs 67 bits and cannot live in an int64; real packed keys use at
#: most 3 * PACK_SHIFT = 63 bits but stay far below ``1 << 62`` (the
#: top component is a small LP bucket or 0/1 security bit), so this
#: sentinel is still strictly larger than every real key.  The
#: write-back maps it to ``_INF`` so python-side consumers see the
#: exact pure-kernel values.
_NP_INF = 1 << 62

#: Contexts at or above this many ASes default to the vectorized kernel
#: (below it, per-round numpy dispatch overhead beats the win).
VECTORIZED_MIN_N = 10_000

#: Deltas whose dirty closure stays below this many nodes run the pure
#: heap loop even when numpy is available: the vectorized delta kernel
#: pays a few dozen numpy dispatches per wave, which beats interpreted
#: per-node work only once the region amortizes them.
DELTA_VEC_MIN = 64

#: Hybrid-policy abort budgets, as fractions of ``n``.  A pure-python
#: delta whose touched region exceeds its budget abandons the delta and
#: re-fixes with one full vectorized pass instead (the abort costs the
#: closure walked so far).  The numpy delta kernel aborts almost for
#: free (its closure never mutates the scratch state) and compares its
#: *estimated cost* — the hard re-wave region plus a quarter-weight for
#: the pruned/tie nodes its python soft phase must walk — against this
#: fraction of ``n``, the dense pass's cost scale.  The fraction is
#: deliberately small: on mid-size graphs one full ``_run_np`` pass is
#: so cheap that the compressed kernel only wins while the region is
#: tiny relative to ``n``; the window widens linearly with graph size
#: (at internet scale a dense pass costs tens of milliseconds, so
#: blast-radius-bound deltas win by an order of magnitude).
DELTA_PURE_BUDGET = 0.125
DELTA_NP_BUDGET = 0.0625

#: Absolute floors under the fractional budgets, so small graphs do not
#: abort deltas that would finish faster than any full pass.
_DELTA_PURE_BUDGET_MIN = 192
_DELTA_NP_BUDGET_MIN = 512


class _DeltaOversize(Exception):
    """Internal: a delta's touched region blew past its abort budget.

    ``args[0]`` holds the touched list accumulated so far (dirty flags
    still set), ``args[1]`` whether the scratch buffers were mutated
    and need a full resynchronization from the snapshot.
    """


class _DeltaSmall(Exception):
    """Internal: the vectorized delta found a dirty closure below
    :data:`DELTA_VEC_MIN` and ceded to the pure loop (nothing mutated,
    dirty flags already cleared)."""

#: Classic-LP models whose packed coefficient rows a shared arena
#: carries (row order is the :data:`rank_coeffs` layout contract).
_COEFF_MODELS = (BASELINE, SECURITY_FIRST, SECURITY_SECOND, SECURITY_THIRD)


def _u8(buf):
    """A uint8 ndarray view of a bytes-like CSR buffer (zero-copy)."""
    if isinstance(buf, (bytes, bytearray)):
        return _np.frombuffer(buf, dtype=_np.uint8)
    return buf


def _np_key_fn(model: RankModel):
    """Vectorized twin of ``model.key`` + ``pack_key``.

    Returns ``f(vcls, ln, sec) -> int64 packed keys`` over aligned
    arrays: ``vcls`` the receiver's route class, ``ln`` the route
    length, ``sec`` the receiver's effective security bit.  Mirrors
    :meth:`RankModel.key` component order and
    :meth:`LocalPreference.bucket` exactly so packed values are
    bit-identical to the pure kernel's.
    """
    np = _np
    mid = 1 << PACK_SHIFT
    hi = 1 << (2 * PACK_SHIFT)
    k = model.local_preference.peer_window

    if k is None:

        def bucket_of(vcls, ln):
            return vcls

    else:

        def bucket_of(vcls, ln):
            capped = np.minimum(ln, k + 1)
            return np.where(vcls == 2, 2 * (k + 1), 2 * (capped - 1) + (vcls == 1))

    placement = model.model
    if placement is SecurityModel.FIRST:
        return lambda vcls, ln, sec: (1 - sec) * hi + bucket_of(vcls, ln) * mid + ln
    if placement is SecurityModel.SECOND:
        return lambda vcls, ln, sec: bucket_of(vcls, ln) * hi + (1 - sec) * mid + ln
    if placement is SecurityModel.THIRD:
        return lambda vcls, ln, sec: bucket_of(vcls, ln) * hi + ln * mid + (1 - sec)
    return lambda vcls, ln, sec: bucket_of(vcls, ln) * hi + ln * mid

#: Shared empty deployment so default-argument calls hit the mask cache.
_EMPTY_DEPLOYMENT = Deployment.empty()


class Reach(enum.IntFlag):
    """Which endpoints an AS's equally-best routes lead to."""

    NONE = 0
    DEST = 1
    ATTACKER = 2
    BOTH = 3


@dataclass(frozen=True)
class RouteInfo:
    """The fixed routing state of one AS for one (m, d, S) computation.

    Attributes:
        route_class: LP class of the best routes (None for d and m).
        length: AS-path length of the best routes (0 for d, 1 for m —
            the attacker claims a direct link to the destination).
        key: the model's rank key of the best routes (None for roots).
        next_hops: every neighbor realizing a best route (the BPR set).
        reaches: union of endpoints over the BPR set; ``BOTH`` means the
            AS's fate rests on its intradomain tiebreak (Section 4.1).
        secure: True if the best routes are secure *for this AS* — it
            runs full S*BGP and the routes were signed end-to-end.
        wire_secure: True if the announcement this AS propagates is
            fully signed (used when its neighbors rank the route).
        choice: next hop under the deterministic lowest-ASN tiebreak.
        endpoint: traffic destination under that tiebreak.
    """

    route_class: RouteClass | None
    length: int
    key: RankKey | None
    next_hops: tuple[int, ...]
    reaches: Reach
    secure: bool
    wire_secure: bool
    choice: int | None
    endpoint: Reach


class RoutingContext:
    """Dense-indexed adjacency plus reusable scratch for routing passes.

    Build once per graph.  ASNs are mapped onto contiguous indices
    ``0..n-1`` via :meth:`ASGraph.dense_index` (sorted-ASN order, so
    index tiebreaks equal ASN tiebreaks).  The adjacency is stored as
    flat CSR buffers:

    * ``adj_start`` — ``array('l')`` of length ``n + 1``; node ``u``'s
      out-edges occupy slots ``adj_start[u]:adj_start[u+1]``;
    * ``adj_node`` — ``array('l')`` of neighbor indices;
    * ``adj_class`` — bytearray; the LP class the *neighbor* assigns to
      a route learned from ``u``;
    * ``adj_custflag`` — bytearray; 1 iff the neighbor is a customer of
      ``u`` (the export rule lets non-customer routes flow only there).

    Per-relationship index adjacency (``providers_idx`` etc.) serves
    the perceivable-closure and partition computations.  The context
    never mutates the graph; it also owns the scratch buffers of the
    fixing pass, which makes a single context not thread-safe (fork
    workers each get a copy-on-write clone, which is safe).

    Example:
        Build one context per graph and reuse it for every computation
        on that graph — the adjacency indexing is paid once:

        >>> from repro.topology.graph import ASGraph
        >>> g = ASGraph()
        >>> for customer, provider in [(2, 1), (3, 1), (4, 2)]:
        ...     g.add_customer_provider(customer, provider)
        >>> ctx = RoutingContext(g)
        >>> ctx.n
        4
        >>> sorted(ctx.index_of)  # dense indices in sorted-ASN order
        [1, 2, 3, 4]
        >>> compute_routing_outcome(ctx, 4, attacker=3).count_happy()
        (1, 2)
    """

    __slots__ = (
        "graph",
        "asns",
        "index_of",
        "n",
        "adj_start",
        "adj_node",
        "adj_class",
        "adj_custflag",
        "providers_idx",
        "customers_idx",
        "peers_idx",
        "vectorized",
        "shared_arena",
        "_arena_released",
        "rank_coeffs",
        "_edges_cache",
        "_np_adj",
        "_np_scratch",
        "_np_post",
        "_np_pairs",
        "_np_inv",
        "_nhops_valid",
        "_neighbor_dicts",
        "_out_edges",
        "_mask_cache",
        "_zero_mask",
        "_fixed",
        "_key",
        "_cls",
        "_len",
        "_reach",
        "_wire",
        "_sec",
        "_choice",
        "_endpoint",
        "_nhops",
        "_key_init",
        "_zeros",
        "_choice_init",
        "_nhops_init",
        "_last_counts",
        "_sweep_owner",
    )

    def __init__(
        self,
        graph: ASGraph,
        *,
        vectorized: bool | None = None,
        shared: bool = False,
        shared_key: object = None,
    ) -> None:
        self.graph = graph
        asn_of, index_of = graph.dense_index()
        n = len(asn_of)
        if n >= 1 << PACK_SHIFT:
            raise ValueError(
                f"graph has {n} ASes; the packed-key engine supports up to "
                f"{(1 << PACK_SHIFT) - 1}"
            )
        if vectorized is None:
            vectorized = _np is not None and n >= VECTORIZED_MIN_N
        elif vectorized and _np is None:  # pragma: no cover - numpy baked in
            raise RuntimeError("vectorized routing requires numpy")
        #: True when fixing passes run the numpy bucket kernel
        #: (:meth:`_run_np`) instead of the pure-python heap loop.
        self.vectorized = bool(vectorized)
        # Copy: dense_index's lists are shared graph-wide caches, and
        # ctx.asns has always been safe for callers to mutate.
        self.asns: list[int] = list(asn_of)
        self.index_of: dict[int, int] = index_of
        self.n = n

        providers_idx: list[tuple[int, ...]] = []
        customers_idx: list[tuple[int, ...]] = []
        peers_idx: list[tuple[int, ...]] = []
        adj_start = array("l", [0])
        adj_node = array("l")
        adj_class = bytearray()
        adj_custflag = bytearray()
        cust = int(RouteClass.CUSTOMER)
        peer = int(RouteClass.PEER)
        prov = int(RouteClass.PROVIDER)
        for u, asn in enumerate(asn_of):
            providers = sorted(index_of[p] for p in graph.providers(asn))
            peers = sorted(index_of[q] for q in graph.peers(asn))
            customers = sorted(index_of[c] for c in graph.customers(asn))
            providers_idx.append(tuple(providers))
            peers_idx.append(tuple(peers))
            customers_idx.append(tuple(customers))
            # A provider p sees a route via its customer u as a customer
            # route; a peer sees a peer route; a customer a provider route.
            for p in providers:
                adj_node.append(p)
                adj_class.append(cust)
                adj_custflag.append(0)
            for q in peers:
                adj_node.append(q)
                adj_class.append(peer)
                adj_custflag.append(0)
            for c in customers:
                adj_node.append(c)
                adj_class.append(prov)
                adj_custflag.append(1)
            adj_start.append(len(adj_node))
        self.adj_start = adj_start
        self.adj_node = adj_node
        self.adj_class = adj_class
        self.adj_custflag = adj_custflag
        self.providers_idx = providers_idx
        self.customers_idx = customers_idx
        self.peers_idx = peers_idx
        #: packed rank-key coefficient rows (one per classic security
        #: model) — only materialized when the CSR lives in a shared
        #: arena, where workers read them from the same segment.
        self.rank_coeffs = None
        #: :class:`repro.core.shm.SharedArena` holding the frozen CSR
        #: buffers, or None when they live in ordinary process memory.
        self.shared_arena = None
        self._arena_released = False
        if shared:
            self._share_buffers(shared_key)
        # Hot-loop adjacency for the pure kernel: per-node lists of
        # ``(v << 3)|(class << 1)|cust``.  Derived from the CSR; built
        # lazily on vectorized contexts, which usually never need it.
        self._edges_cache: list[list[int]] | None = (
            None if self.vectorized else self._build_edges()
        )
        self._np_adj: tuple | None = None
        self._np_scratch: dict | None = None
        self._np_post: tuple | None = None
        #: ``(us, vs)`` next-hop membership pairs of the most recent
        #: :meth:`_materialize_nhops` (sorted by target) — lets a sweep
        #: snapshot its dependency structure without re-walking the lists.
        self._np_pairs: tuple | None = None
        #: reusable global→compressed index map of the delta kernel
        #: (int64, -1 outside the active region).
        self._np_inv = None
        #: False while the scratch ``_nhops`` lists are stale relative to
        #: the numpy scratch arrays (the bucket kernel defers building
        #: them; :meth:`_materialize_nhops` catches up on demand).
        self._nhops_valid = True
        self._neighbor_dicts: tuple[dict, dict, dict] | None = None
        self._out_edges: dict | None = None
        self._mask_cache: dict = {}
        self._zero_mask = bytearray(n)

        # Scratch buffers, reset (not reallocated) between pairs.
        self._fixed = bytearray(n)
        self._key: list[int] = [_INF] * n
        self._cls = bytearray(n)
        self._len: list[int] = [0] * n
        self._reach = bytearray(n)
        self._wire = bytearray(n)
        self._sec = bytearray(n)
        self._choice: list[int] = [-1] * n
        self._endpoint = bytearray(n)
        self._nhops: list[list[int] | None] = [None] * n
        self._key_init = [_INF] * n
        self._zeros = bytes(n)
        self._choice_init = [-1] * n
        self._nhops_init: list[None] = [None] * n
        self._last_counts: tuple[int, int, int, int, int, int] = (0,) * 6
        #: Weak reference to the :class:`DestinationSweep` whose baseline
        #: currently lives in the scratch buffers (None after any
        #: whole-graph ``_run``).  Lets a sweep detect that someone else
        #: used the scratch in between and resynchronize from its
        #: snapshot instead of delta-fixing garbage; weak so a finished
        #: sweep's O(V+E) snapshot is not pinned alive by the context.
        self._sweep_owner: "weakref.ref[DestinationSweep] | None" = None

    # ------------------------------------------------------------------
    # Adjacency representations and shared-memory placement
    # ------------------------------------------------------------------
    def _build_edges(self) -> list[list[int]]:
        """Per-node packed-edge lists, derived from the CSR buffers."""
        n = self.n
        if _np is not None:
            np = _np
            node = np.asarray(self.adj_node, dtype=np.int64)
            cls_e = _u8(self.adj_class).astype(np.int64)
            cf = _u8(self.adj_custflag).astype(np.int64)
            packed = ((node << 3) | (cls_e << 1) | cf).tolist()
            starts = np.asarray(self.adj_start, dtype=np.int64).tolist()
            return [packed[starts[u] : starts[u + 1]] for u in range(n)]
        start = self.adj_start
        node = self.adj_node
        cls_e = self.adj_class
        cf = self.adj_custflag
        return [
            [
                (node[j] << 3) | (cls_e[j] << 1) | cf[j]
                for j in range(start[u], start[u + 1])
            ]
            for u in range(n)
        ]

    @property
    def _edges(self) -> list[list[int]]:
        """Hot-loop adjacency of the pure kernel (lazy on vectorized
        contexts, which only need it for delta re-fixing sweeps)."""
        edges = self._edges_cache
        if edges is None:
            edges = self._edges_cache = self._build_edges()
        return edges

    def _share_buffers(self, shared_key: object = None) -> None:
        """Move the frozen CSR + rank-coefficient buffers into one
        shared-memory segment and rebind them as zero-copy views.

        Fork workers then read a single physical mapping instead of
        dirtying copy-on-write pages through refcount churn (see
        :mod:`repro.core.shm`).  With a ``shared_key`` (anything that
        uniquely determines the frozen buffers, e.g. the (scale, seed,
        ixp) that generated the graph), sibling contexts for the same
        topology map the *same* physical segment via
        :func:`repro.core.shm.arena_for` instead of one segment each —
        what a service holding several resident contexts wants.  Call
        :meth:`close` (or rely on the shm module's atexit hook) to
        unlink the segment.
        """
        from .shm import HAVE_SHARED_MEMORY, SharedArena, arena_for

        if not HAVE_SHARED_MEMORY:  # pragma: no cover - numpy baked in
            raise RuntimeError(
                "shared routing contexts need numpy and "
                "multiprocessing.shared_memory"
            )
        np = _np

        def _arrays() -> dict:
            coeffs = np.array(
                [m.packed_coeffs() for m in _COEFF_MODELS], dtype=np.int64
            )
            return {
                "adj_start": np.asarray(self.adj_start, dtype=np.int64),
                "adj_node": np.asarray(self.adj_node, dtype=np.int64),
                "adj_class": _u8(self.adj_class),
                "adj_custflag": _u8(self.adj_custflag),
                "rank_coeffs": coeffs,
            }

        if shared_key is not None:
            arena = arena_for(shared_key, _arrays, prefix="repro-ctx")
        else:
            arena = SharedArena(_arrays(), prefix="repro-ctx")
        self.shared_arena = arena
        self.adj_start = arena.array("adj_start")
        self.adj_node = arena.array("adj_node")
        self.adj_class = arena.array("adj_class")
        self.adj_custflag = arena.array("adj_custflag")
        self.rank_coeffs = arena.array("rank_coeffs")

    def close(self) -> None:
        """Release this context's hold on its shared segment (idempotent).

        The segment is unlinked once the last holder lets go — sibling
        contexts sharing a keyed arena keep it alive.  Live views —
        including those in forked workers — stay valid even then; only
        the ``/dev/shm`` name goes away.  No-op for contexts whose
        buffers live in ordinary process memory.
        """
        arena = self.shared_arena
        if arena is not None and not self._arena_released:
            self._arena_released = True
            arena.close()

    def __enter__(self) -> "RoutingContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _np_adjacency(self):
        """Int64/bool CSR views for the vectorized kernel (cached)."""
        adj = self._np_adj
        if adj is None:
            np = _np
            start = np.ascontiguousarray(self.adj_start, dtype=np.int64)
            node = np.ascontiguousarray(self.adj_node, dtype=np.int64)
            cls_e = _u8(self.adj_class).astype(np.int64)
            cf_b = _u8(self.adj_custflag).astype(np.bool_)
            esrc = np.repeat(
                np.arange(self.n, dtype=np.int64), np.diff(start)
            )
            adj = self._np_adj = (start, node, cls_e, cf_b, esrc)
        return adj

    def _np_ensure_scratch(self) -> dict:
        """Reusable numpy scratch arrays for :meth:`_run_np`."""
        st = self._np_scratch
        if st is None:
            np = _np
            n = self.n
            st = self._np_scratch = {
                # tentative keys still in the "queue" (fixed → _NP_INF)
                "keyq": np.empty(n, np.int64),
                # final fixed keys (write-back maps _NP_INF → _INF)
                "key": np.empty(n, np.int64),
                "cls": np.zeros(n, np.int64),
                "len": np.zeros(n, np.int64),
                "reach": np.empty(n, np.int64),
                "wire": np.empty(n, np.int64),
                "sec": np.empty(n, np.int64),
                "choice": np.empty(n, np.int64),
                # running min of tying offerers (the lowest-index
                # tiebreak; == choice once fixed)
                "chacc": np.empty(n, np.int64),
                "endp": np.empty(n, np.int64),
                "fixed": np.empty(n, np.bool_),
                # round in which each node fixed (roots: 0) — the fix
                # *chronology*, which under security-1st/2nd placements
                # is not the key order (see _run_np on flip offers)
                "forder": np.empty(n, np.int64),
            }
        return st

    # ------------------------------------------------------------------
    # ASN-keyed compatibility views (built lazily; the engine itself
    # works in index space)
    # ------------------------------------------------------------------
    def _relationship_dicts(self) -> tuple[dict, dict, dict]:
        built = self._neighbor_dicts
        if built is None:
            asn_of = self.asns
            providers_of = {}
            customers_of = {}
            peers_of = {}
            for u, asn in enumerate(asn_of):
                providers_of[asn] = tuple(asn_of[i] for i in self.providers_idx[u])
                customers_of[asn] = tuple(asn_of[i] for i in self.customers_idx[u])
                peers_of[asn] = tuple(asn_of[i] for i in self.peers_idx[u])
            built = self._neighbor_dicts = (providers_of, customers_of, peers_of)
        return built

    @property
    def providers_of(self) -> dict[int, tuple[int, ...]]:
        """ASN → sorted provider ASNs (compatibility view)."""
        return self._relationship_dicts()[0]

    @property
    def customers_of(self) -> dict[int, tuple[int, ...]]:
        """ASN → sorted customer ASNs (compatibility view)."""
        return self._relationship_dicts()[1]

    @property
    def peers_of(self) -> dict[int, tuple[int, ...]]:
        """ASN → sorted peer ASNs (compatibility view)."""
        return self._relationship_dicts()[2]

    @property
    def out_edges(self) -> dict[int, tuple[tuple[int, int, bool], ...]]:
        """ASN-keyed adjacency ``(v, class_for_v, v_is_customer)`` view."""
        built = self._out_edges
        if built is None:
            asn_of = self.asns
            built = {}
            for u, asn in enumerate(asn_of):
                built[asn] = tuple(
                    (asn_of[e >> 3], (e >> 1) & 3, bool(e & 1))
                    for e in self._edges[u]
                )
            self._out_edges = built
        return built

    # ------------------------------------------------------------------
    # Deployment masks
    # ------------------------------------------------------------------
    def deployment_masks(self, deployment: Deployment) -> tuple[bytearray, bytearray]:
        """``(signing, ranking)`` membership masks over dense indices.

        Cached per deployment object (identity-keyed with a strong
        reference, so ids cannot be recycled) because mask construction
        is O(n) while a batched sweep reuses the same deployment for
        thousands of pairs.  Deployment members absent from the graph
        are ignored, matching the seed engine's set-membership checks.
        """
        if deployment.size == 0:
            zero = self._zero_mask
            return zero, zero
        cache = self._mask_cache
        entry = cache.get(id(deployment))
        if entry is not None and entry[0] is deployment:
            return entry[1], entry[2]
        index_of = self.index_of
        signing = bytearray(self.n)
        ranking = bytearray(self.n)
        get = index_of.get
        for asn in deployment.full:
            i = get(asn)
            if i is not None:
                signing[i] = 1
                ranking[i] = 1
        for asn in deployment.simplex:
            i = get(asn)
            if i is not None:
                signing[i] = 1
        if len(cache) >= 8:
            cache.clear()
        cache[id(deployment)] = (deployment, signing, ranking)
        return signing, ranking

    # ------------------------------------------------------------------
    # The fixing pass
    # ------------------------------------------------------------------
    def _check_pair(self, destination: int, attacker: int | None) -> tuple[int, int]:
        dest_i = self.index_of.get(destination)
        if dest_i is None:
            raise ValueError(f"destination AS {destination} not in graph")
        if attacker is None:
            return dest_i, -1
        att_i = self.index_of.get(attacker)
        if att_i is None:
            raise ValueError(f"attacker AS {attacker} not in graph")
        if att_i == dest_i:
            raise ValueError("attacker and destination must differ")
        return dest_i, att_i

    def _resolve_attack(
        self,
        dest_i: int,
        att_i: int,
        signing: bytearray,
        ranking: bytearray,
        model: RankModel,
        attack: AttackStrategy,
    ) -> ResolvedAttack:
        """Resolve ``attack`` for one pair (running the attacker-free
        pass first when the strategy needs the attacker's baseline).

        On the per-pair paths a ``needs_baseline`` strategy therefore
        costs two full fixing passes per pair; the destination-major
        path (the default everywhere) reads the baseline from the
        sweep's snapshot instead, so per-pair stays the simple oracle.
        """
        if att_i < 0:
            return DEFAULT_RESOLVED
        baseline = None
        if attack.needs_baseline:
            self._run(dest_i, -1, signing, ranking, model)
            baseline = AttackerBaseline(
                has_route=bool(self._fixed[att_i]),
                length=self._len[att_i],
                wire_secure=bool(self._wire[att_i]),
            )
        return attack.resolve(dest_signed=bool(signing[dest_i]), baseline=baseline)

    def _run(
        self,
        dest_i: int,
        att_i: int,
        signing: bytearray,
        ranking: bytearray,
        model: RankModel,
        attack: ResolvedAttack = DEFAULT_RESOLVED,
    ) -> None:
        """Run one fixing pass over the scratch buffers (``att_i = -1``
        for normal conditions; ``attack`` parameterizes how the attacker
        root announces).  Results live in the scratch arrays and
        :attr:`_last_counts` until the next run."""
        if self.vectorized:
            return self._run_np(dest_i, att_i, signing, ranking, model, attack)
        self._sweep_owner = None
        self._nhops_valid = True
        n = self.n
        fixed = self._fixed
        key_l = self._key
        cls_b = self._cls
        len_l = self._len
        reach_b = self._reach
        wire_b = self._wire
        sec_b = self._sec
        choice_l = self._choice
        endp_b = self._endpoint
        nhops = self._nhops
        # Zero-fill / re-init between pairs instead of reallocating.
        fixed[:] = self._zeros
        key_l[:] = self._key_init
        reach_b[:] = self._zeros
        wire_b[:] = self._zeros
        sec_b[:] = self._zeros
        endp_b[:] = self._zeros
        choice_l[:] = self._choice_init
        nhops[:] = self._nhops_init

        coeffs = model.packed_coeffs()
        if coeffs is not None:
            cm, lm, sm = coeffs
            key_fn = None
        else:
            cm = lm = sm = 0
            key_fn = model.packed_key
        uses_sec = model.uses_security

        edges = self._edges
        heap: list[int] = []
        push = heapq.heappush
        pop = heapq.heappop

        def relax(u: int, exports_all: bool, ln: int, wire_u: int, reach_u: int) -> None:
            for e in edges[u]:
                v = e >> 3
                if fixed[v] or not (exports_all or (e & 1)):
                    continue
                vcls = (e >> 1) & 3
                if key_fn is None:
                    k = vcls * cm + ln * lm + (0 if (wire_u and ranking[v]) else sm)
                else:
                    k = key_fn(RouteClass(vcls), ln, bool(wire_u and ranking[v]))
                cur = key_l[v]
                if k < cur:
                    key_l[v] = k
                    cls_b[v] = vcls
                    len_l[v] = ln
                    reach_b[v] = reach_u
                    wire_b[v] = wire_u
                    nhops[v] = [u]
                    push(heap, (k << PACK_SHIFT) | v)
                elif k == cur:
                    nhops[v].append(u)  # type: ignore[union-attr]
                    reach_b[v] |= reach_u
                    if not wire_u:
                        wire_b[v] = 0

        # Roots: the destination originates the prefix; the attacker
        # originates its claimed path as the strategy resolved it (the
        # paper default: the bogus one-hop-longer "m d" via legacy BGP).
        dest_signed = 1 if signing[dest_i] else 0
        fixed[dest_i] = 1
        len_l[dest_i] = 0
        reach_b[dest_i] = 1
        endp_b[dest_i] = 1
        wire_b[dest_i] = dest_signed
        sec_b[dest_i] = dest_signed
        remaining = n - 1
        att_active = attack.active
        if att_i >= 0:
            fixed[att_i] = 1
            len_l[att_i] = attack.length
            if att_active:
                reach_b[att_i] = 2
                endp_b[att_i] = 2
            wire_b[att_i] = 1 if attack.wire else 0
            remaining -= 1
        relax(dest_i, True, 1, dest_signed, 1)
        if att_i >= 0 and att_active:
            relax(
                att_i,
                attack.export_all,
                attack.length + 1,
                1 if attack.wire else 0,
                2,
            )

        happy_lo = happy_up = att_lo = att_up = secure_n = nfixed = 0
        while heap:
            entry = pop(heap)
            v = entry & _IDX_MASK
            if fixed[v] or (entry >> PACK_SHIFT) != key_l[v]:
                continue  # already fixed, or a stale heap entry
            nh = nhops[v]
            ch = nh[0] if len(nh) == 1 else min(nh)  # type: ignore[index, arg-type]
            choice_l[v] = ch
            endp_b[v] = endp_b[ch]
            w = wire_b[v]
            s = 0
            if w:
                # "uses a secure route" is only meaningful when the model
                # ranks security: a baseline-model AS treats every route
                # as insecure even if the announcement arrived signed.
                if uses_sec and ranking[v]:
                    sec_b[v] = s = 1
                if not signing[v]:
                    wire_b[v] = 0  # v re-announces without a signature
            fixed[v] = 1
            nfixed += 1
            secure_n += s
            r = reach_b[v]
            if r == 1:
                happy_lo += 1
                happy_up += 1
            elif r == 2:
                att_lo += 1
                att_up += 1
            else:  # BOTH: the knife's edge population
                happy_up += 1
                att_up += 1
            remaining -= 1
            if remaining == 0:
                break
            relax(v, cls_b[v] == 0, len_l[v] + 1, wire_b[v], r)

        self._last_counts = (happy_lo, happy_up, att_lo, att_up, secure_n, nfixed)

    def _run_np(
        self,
        dest_i: int,
        att_i: int,
        signing: bytearray,
        ranking: bytearray,
        model: RankModel,
        attack: ResolvedAttack = DEFAULT_RESOLVED,
        writeback: bool = True,
    ) -> None:
        """Vectorized twin of :meth:`_run`: a bucket-Dijkstra sweep.

        For offers that keep the receiver's security bit equal to the
        sender's, rank keys are strictly monotone (LP buckets never
        shrink along an export-legal edge and length always grows), so
        every node holding the current *global minimum* tentative key is
        final and each round can fix the whole minimum-key bucket at
        once, relaxing all its out-edges in one batch of numpy
        gathers/scatters.  The number of such rounds is bounded by the
        number of *distinct* packed keys — a few dozen ``(class,
        length, security)`` combinations at any graph size — so
        per-node python overhead vanishes.

        The exception is a **flip offer**: a simplex AS whose own route
        ranks insecure (it does not rank) but stays wire-secure (it
        signs) offers a *secure* route to a ranking neighbor, and under
        the security-1st/2nd placements that offer's key is *smaller*
        than the sender's.  The pure heap pops such undercut work
        before the rest of the sender's bucket, so to stay bit-identical
        the sweep fixes flip-capable members of insecure buckets one at
        a time (re-taking the global minimum after each, which walks
        any undercut cascade exactly like the heap does).  Buckets and
        bucket prefixes without flip-capable members batch as usual —
        deployments without simplex members never leave the fast path.

        State is written back into the ordinary scratch buffers so every
        consumer (snapshots, delta sweeps, counts) sees bit-identical
        values to the pure kernel; only the per-node next-hop lists are
        deferred (see :meth:`_materialize_nhops`).  With
        ``writeback=False`` the pass stops after :attr:`_last_counts`:
        the python scratch buffers (and the sweep ownership they may
        encode) are left untouched — the dense count-only fall-back of
        the hybrid delta policy relies on exactly that.
        """
        np = _np
        if writeback:
            self._sweep_owner = None
        n = self.n
        start, node, cls_e, cf_b, _esrc = self._np_adjacency()
        st = self._np_ensure_scratch()
        keyq = st["keyq"]
        key_real = st["key"]
        cls_s = st["cls"]
        len_s = st["len"]
        reach_s = st["reach"]
        wire_s = st["wire"]
        sec_s = st["sec"]
        choice_s = st["choice"]
        chacc = st["chacc"]
        endp_s = st["endp"]
        fixed_s = st["fixed"]
        forder = st["forder"]
        keyq.fill(_NP_INF)
        forder.fill(0)
        key_real.fill(_NP_INF)
        reach_s.fill(0)
        wire_s.fill(0)
        sec_s.fill(0)
        choice_s.fill(-1)
        chacc.fill(n)
        endp_s.fill(0)
        fixed_s.fill(False)
        # Copies: a sweep may mutate its private mask bytearrays after
        # this pass, and _materialize_nhops re-reads the ranking mask.
        rank_np = np.frombuffer(ranking, dtype=np.uint8).astype(np.int64)
        sign_np = np.frombuffer(signing, dtype=np.uint8).astype(np.int64)
        key_of = _np_key_fn(model)
        uses_sec = model.uses_security

        int64 = np.int64
        arange = np.arange

        def relax(F, exp_src, ln_src, wire_src, reach_src):
            """Batch-relax every out-edge of the just-fixed sources F."""
            s = start[F]
            cnt = start[F + 1] - s
            tot = int(cnt.sum())
            if not tot:
                return
            # Edge indices of all of F's out-edges, F-order: for each
            # source its CSR slice, concatenated.
            cend = np.cumsum(cnt)
            eidx = np.repeat(s - (cend - cnt), cnt) + arange(tot)
            rep = np.repeat(arange(len(F)), cnt)
            v = node[eidx]
            ok = (exp_src[rep] | cf_b[eidx]) & ~fixed_s[v]
            if not ok.any():
                return
            eidx = eidx[ok]
            v = v[ok]
            rep = rep[ok]
            vcls = cls_e[eidx]
            ln = ln_src[rep]
            wi = wire_src[rep]
            k = key_of(vcls, ln, wi & rank_np[v])
            old = keyq[v]  # gather (a copy): pre-round tentative keys
            np.minimum.at(keyq, v, k)
            new = keyq[v]  # post-round tentative keys, per edge
            improved = new < old
            if improved.any():
                # Strict improvement resets the accumulators of the
                # *target*, exactly like the pure kernel's k < cur arm
                # (reach/wire/chacc re-accumulate from the identity).
                iv = v[improved]
                reach_s[iv] = 0
                wire_s[iv] = 1
                chacc[iv] = n
            tie = k == new
            tv = v[tie]
            # All edges tying a target's tentative key share one
            # (class, length): packing is injective in them.
            cls_s[tv] = vcls[tie]
            len_s[tv] = ln[tie]
            np.bitwise_or.at(reach_s, tv, reach_src[rep[tie]])
            np.minimum.at(wire_s, tv, wi[tie])
            np.minimum.at(chacc, tv, F[rep[tie]])

        # Roots (same semantics as the pure kernel's init block).
        dest_signed = 1 if signing[dest_i] else 0
        fixed_s[dest_i] = True
        len_s[dest_i] = 0
        reach_s[dest_i] = 1
        endp_s[dest_i] = 1
        wire_s[dest_i] = dest_signed
        sec_s[dest_i] = dest_signed
        att_active = attack.active
        att_wire = 1 if attack.wire else 0
        if att_i >= 0:
            fixed_s[att_i] = True
            len_s[att_i] = attack.length
            if att_active:
                reach_s[att_i] = 2
                endp_s[att_i] = 2
            wire_s[att_i] = att_wire
        relax(
            np.array([dest_i], dtype=int64),
            np.ones(1, dtype=np.bool_),
            np.ones(1, dtype=int64),
            np.array([dest_signed], dtype=int64),
            np.ones(1, dtype=int64),
        )
        if att_i >= 0 and att_active:
            relax(
                np.array([att_i], dtype=int64),
                np.array([attack.export_all], dtype=np.bool_),
                np.array([attack.length + 1], dtype=int64),
                np.array([att_wire], dtype=int64),
                np.array([2], dtype=int64),
            )

        placement = model.model
        if placement is SecurityModel.FIRST:
            insec_shift = 2 * PACK_SHIFT
        elif placement is SecurityModel.SECOND:
            insec_shift = PACK_SHIFT
        else:
            insec_shift = -1  # baseline/3rd: keys are strictly monotone

        rounds = 0
        while True:
            gmin = int(keyq.min())
            if gmin >= _NP_INF:
                break
            B = np.flatnonzero(keyq == gmin)
            if insec_shift >= 0 and (gmin >> insec_shift) & 1:
                # Insecure bucket under a flip-prone placement: batch
                # only up to the first flip-capable member (equal keys
                # pop in index order in the pure heap, and flatnonzero
                # is ascending, so B[0] is the heap's next pop).
                flips = np.flatnonzero(wire_s[B] & sign_np[B])
                if len(flips):
                    B = B[: max(int(flips[0]), 1)]
            rounds += 1
            keyq[B] = _NP_INF
            key_real[B] = gmin
            fixed_s[B] = True
            forder[B] = rounds
            ch = chacc[B]
            choice_s[B] = ch
            endp_s[B] = endp_s[ch]
            w = wire_s[B]
            if uses_sec:
                sec_s[B] = w & rank_np[B]
            wire_s[B] = w & sign_np[B]
            relax(B, cls_s[B] == 0, len_s[B] + 1, wire_s[B], reach_s[B])

        counted = fixed_s.copy()
        counted[dest_i] = False
        if att_i >= 0:
            counted[att_i] = False
        r = reach_s[counted]
        nfixed = int(counted.sum())
        happy_lo = int((r == 1).sum())
        att_lo = int((r == 2).sum())
        both = int((r == 3).sum())
        self._last_counts = (
            happy_lo,
            happy_lo + both,
            att_lo,
            att_lo + both,
            int(sec_s[counted].sum()),
            nfixed,
        )
        if not writeback:
            return

        # Write back into the ordinary scratch buffers so python-side
        # consumers (snapshots, delta sweeps) see pure-kernel values.
        self._fixed[:] = fixed_s.tobytes()
        self._cls[:] = cls_s.astype(np.uint8).tobytes()
        self._reach[:] = reach_s.astype(np.uint8).tobytes()
        self._wire[:] = wire_s.astype(np.uint8).tobytes()
        self._sec[:] = sec_s.astype(np.uint8).tobytes()
        self._endpoint[:] = endp_s.astype(np.uint8).tobytes()
        self._len[:] = len_s.tolist()
        self._choice[:] = choice_s.tolist()
        key_list = key_real.tolist()
        for i in np.flatnonzero(key_real == _NP_INF).tolist():
            key_list[i] = _INF
        self._key[:] = key_list
        self._nhops_valid = False
        self._np_post = (dest_i, att_i, att_active, attack.export_all, key_of, rank_np)

    def _materialize_nhops(self) -> None:
        """Build the per-node next-hop lists the bucket kernel defers.

        Membership is decided arithmetically instead of by accumulating
        lists during the sweep: ``u ∈ nhops[v]`` iff both are fixed,
        ``u``'s export rule admits the edge, ``v`` is not a root,
        ``u``'s offer key equals ``v``'s final key, **and** ``u`` fixed
        chronologically before ``v`` (the pure kernel only records
        offers made while ``v`` was still tentative; under the
        security-1st/2nd placements a flip offer can tie ``v``'s key
        from a node fixed later, so key comparison alone over-counts).
        One whole-CSR batch evaluates every edge at once; count-only
        workloads never pay for it.  Lists come out sorted by sender
        index (the pure kernel's are in fix order, which no consumer
        observes: they are read as sets, minima, or sorted).
        """
        if self._nhops_valid:
            return
        self._nhops_valid = True
        np = _np
        dest_i, att_i, att_active, att_exp, key_of, rank_np = self._np_post
        start, node, cls_e, cf_b, esrc = self._np_adjacency()
        st = self._np_scratch
        fixed_s = st["fixed"]
        key_real = st["key"]
        cls_s = st["cls"]
        len_s = st["len"]
        wire_s = st["wire"]
        forder = st["forder"]
        u = esrc
        v = node
        exp = (cls_s[u] == 0) | cf_b
        # Root overrides: the origin exports to everyone; the attacker
        # per its resolved strategy (len_s/wire_s already hold the root
        # values the pure kernel relaxes with, so ln/wire need none).
        exp |= u == dest_i
        sel = fixed_s[u] & fixed_s[v] & (v != dest_i)
        if att_i >= 0:
            au = u == att_i
            if not att_active:
                exp &= ~au
            elif not att_exp:
                exp = np.where(au, cf_b, exp)
            else:
                exp |= au
            sel &= v != att_i
        sel &= exp
        us = u[sel]
        vs = v[sel]
        k = key_of(cls_e[sel], len_s[us] + 1, wire_s[us] & rank_np[vs])
        keep = (k == key_real[vs]) & (forder[us] < forder[vs])
        us = us[keep]
        vs = vs[keep]
        nhops = self._nhops
        nhops[:] = self._nhops_init
        self._np_pairs = (us[:0], vs[:0])
        if len(vs):
            order = np.argsort(vs * self.n + us)
            vs = vs[order]
            us = us[order]
            self._np_pairs = (us, vs)
            us_list = us.tolist()
            bounds = np.flatnonzero(np.diff(vs)).tolist()
            starts = [0, *(b + 1 for b in bounds)]
            ends = [*bounds, len(us_list) - 1]
            heads = vs[np.asarray(starts, dtype=np.int64)].tolist()
            for vv, a, b in zip(heads, starts, ends):
                nhops[vv] = us_list[a : b + 1]

    def _snapshot(
        self,
        destination: int,
        attacker: int | None,
        deployment: Deployment,
        model: RankModel,
        dest_i: int,
        att_i: int,
        attack: AttackStrategy = DEFAULT_ATTACK,
        resolved: ResolvedAttack = DEFAULT_RESOLVED,
    ) -> "RoutingOutcome":
        self._materialize_nhops()
        return RoutingOutcome(
            destination=destination,
            attacker=attacker,
            deployment=deployment,
            model=model,
            attack=attack,
            _resolved=resolved,
            _ctx=self,
            _dest_i=dest_i,
            _att_i=att_i,
            _fixed=bytes(self._fixed),
            _cls=bytes(self._cls),
            _len=list(self._len),
            _reach=bytes(self._reach),
            _wire=bytes(self._wire),
            _sec=bytes(self._sec),
            _choice=list(self._choice),
            _endpoint=bytes(self._endpoint),
            _nhops=list(self._nhops),
            _counts=self._last_counts,
        )


def _as_context(topology: ASGraph | RoutingContext) -> RoutingContext:
    if isinstance(topology, RoutingContext):
        return topology
    return RoutingContext(topology)


class _RouteView(Mapping):
    """Lazy ``{asn: RouteInfo}`` mapping over the flat result arrays.

    RouteInfo objects are materialized (and memoized) only for the ASes
    a caller actually touches; aggregate queries on
    :class:`RoutingOutcome` never build any.
    """

    __slots__ = ("_outcome", "_cache")

    def __init__(self, outcome: "RoutingOutcome") -> None:
        self._outcome = outcome
        self._cache: dict[int, RouteInfo] = {}

    def __getitem__(self, asn: int) -> RouteInfo:
        info = self._cache.get(asn)
        if info is not None:
            return info
        o = self._outcome
        i = o._ctx.index_of.get(asn)
        if i is None or not o._fixed[i]:
            raise KeyError(asn)
        info = o._build_info(i)
        self._cache[asn] = info
        return info

    def __contains__(self, asn: object) -> bool:
        o = self._outcome
        i = o._ctx.index_of.get(asn)  # type: ignore[arg-type]
        return i is not None and bool(o._fixed[i])

    def __iter__(self) -> Iterator[int]:
        o = self._outcome
        fixed = o._fixed
        asn_of = o._ctx.asns
        for i in range(o._ctx.n):
            if fixed[i]:
                yield asn_of[i]

    def __len__(self) -> int:
        o = self._outcome
        return o._counts[5] + (2 if o._att_i >= 0 else 1)


class RoutingOutcome:
    """The stable state for one ``(destination, attacker, S, model)``.

    Backed by flat per-index arrays snapshotted from the engine's
    scratch buffers; :attr:`routes` is a lazily-materialized
    :class:`RouteInfo` view kept for API compatibility.  ASes with no
    route at all (possible on disconnected inputs) are absent from
    :attr:`routes`.
    """

    __slots__ = (
        "destination",
        "attacker",
        "deployment",
        "model",
        "attack",
        "_resolved",
        "_ctx",
        "_dest_i",
        "_att_i",
        "_fixed",
        "_cls",
        "_len",
        "_reach",
        "_wire",
        "_sec",
        "_choice",
        "_endpoint",
        "_nhops",
        "_counts",
        "_routes",
    )

    def __init__(
        self,
        destination: int,
        attacker: int | None,
        deployment: Deployment,
        model: RankModel,
        _ctx: RoutingContext,
        attack: AttackStrategy,
        _resolved: ResolvedAttack,
        _dest_i: int,
        _att_i: int,
        _fixed: bytes,
        _cls: bytes,
        _len: list[int],
        _reach: bytes,
        _wire: bytes,
        _sec: bytes,
        _choice: list[int],
        _endpoint: bytes,
        _nhops: list,
        _counts: tuple[int, int, int, int, int, int],
    ) -> None:
        self.destination = destination
        self.attacker = attacker
        self.deployment = deployment
        self.model = model
        self.attack = attack
        self._resolved = _resolved
        self._ctx = _ctx
        self._dest_i = _dest_i
        self._att_i = _att_i
        self._fixed = _fixed
        self._cls = _cls
        self._len = _len
        self._reach = _reach
        self._wire = _wire
        self._sec = _sec
        self._choice = _choice
        self._endpoint = _endpoint
        self._nhops = _nhops
        self._counts = _counts
        self._routes: _RouteView | None = None

    @property
    def total_ases(self) -> int:
        return self._ctx.n

    @property
    def routes(self) -> _RouteView:
        view = self._routes
        if view is None:
            view = self._routes = _RouteView(self)
        return view

    def _build_info(self, i: int) -> RouteInfo:
        ctx = self._ctx
        asn_of = ctx.asns
        if i == self._dest_i:
            signed = bool(self._sec[i])
            return RouteInfo(
                route_class=None,
                length=0,
                key=None,
                next_hops=(),
                reaches=Reach.DEST,
                secure=signed,
                wire_secure=signed,
                choice=None,
                endpoint=Reach.DEST,
            )
        if i == self._att_i:
            res = self._resolved
            reach = Reach.ATTACKER if res.active else Reach.NONE
            return RouteInfo(
                route_class=None,
                length=res.length,  # the claimed path (default: "m d")
                key=None,
                next_hops=(),
                reaches=reach,
                secure=False,
                # valid-*looking* attributes count as wire security for
                # receivers; a silent attacker announces nothing.
                wire_secure=res.wire,
                choice=None,
                endpoint=reach,
            )
        route_class = RouteClass(self._cls[i])
        length = self._len[i]
        secure = bool(self._sec[i])
        # The rank-time security bit equals the stored secure bit for
        # security-aware models and is ignored by the baseline key, so
        # the tuple key reconstructs exactly.
        return RouteInfo(
            route_class=route_class,
            length=length,
            key=self.model.key(route_class, length, secure),
            next_hops=tuple(asn_of[j] for j in sorted(self._nhops[i])),
            reaches=Reach(self._reach[i]),
            secure=secure,
            wire_secure=bool(self._wire[i]),
            choice=asn_of[self._choice[i]],
            endpoint=Reach(self._endpoint[i]),
        )

    # -- source enumeration ------------------------------------------------
    @property
    def num_sources(self) -> int:
        """|V| minus the destination and (if present) the attacker."""
        return self._ctx.n - (2 if self.attacker is not None else 1)

    def is_source(self, asn: int) -> bool:
        return asn != self.destination and asn != self.attacker

    def sources(self) -> Iterator[int]:
        """All fixed ASes other than the roots."""
        fixed = self._fixed
        asn_of = self._ctx.asns
        dest_i = self._dest_i
        att_i = self._att_i
        for i in range(self._ctx.n):
            if fixed[i] and i != dest_i and i != att_i:
                yield asn_of[i]

    # -- per-AS predicates -------------------------------------------------
    def _index(self, asn: int) -> int | None:
        i = self._ctx.index_of.get(asn)
        if i is None or not self._fixed[i]:
            return None
        return i

    def reaches(self, asn: int) -> Reach:
        i = self._index(asn)
        return Reach(self._reach[i]) if i is not None else Reach.NONE

    def happy_lower(self, asn: int) -> bool:
        """Happy under adversarial tiebreaking (all BPR routes legit)."""
        i = self._index(asn)
        return i is not None and self._reach[i] == 1

    def happy_upper(self, asn: int) -> bool:
        """Happy under friendly tiebreaking (some BPR route is legit)."""
        i = self._index(asn)
        return i is not None and bool(self._reach[i] & 1)

    def uses_secure_route(self, asn: int) -> bool:
        """True if the AS's best routes are secure (it validates them)."""
        i = self._index(asn)
        return i is not None and bool(self._sec[i])

    # -- aggregate counts --------------------------------------------------
    def count_happy(self) -> tuple[int, int]:
        """(lower bound, upper bound) on the number of happy sources."""
        return self._counts[0], self._counts[1]

    def count_attacked(self) -> tuple[int, int]:
        """(lower, upper) bounds on sources routing to the attacker."""
        return self._counts[2], self._counts[3]

    def count_secure_sources(self) -> int:
        """Sources whose best routes are secure."""
        return self._counts[4]

    def secure_sources(self) -> frozenset[int]:
        """The sources of :meth:`count_secure_sources`, as ASNs."""
        sec = self._sec
        asn_of = self._ctx.asns
        dest_i = self._dest_i
        att_i = self._att_i
        return frozenset(
            asn_of[i]
            for i in range(self._ctx.n)
            if sec[i] and i != dest_i and i != att_i
        )

    # -- concrete (deterministic tiebreak) view ----------------------------
    def concrete_endpoint(self, asn: int) -> Reach:
        i = self._index(asn)
        return Reach(self._endpoint[i]) if i is not None else Reach.NONE

    def concrete_path(self, asn: int) -> tuple[int, ...]:
        """The physical AS path under the deterministic tiebreak.

        For attacked routes the path ends at the attacker (where traffic
        actually terminates), not at the claimed destination.
        """
        i = self._index(asn)
        if i is None:
            return ()
        asn_of = self._ctx.asns
        choice = self._choice
        path = [asn_of[i]]
        seen = {i}
        while True:
            i = choice[i]
            if i < 0:
                return tuple(path)
            if i in seen:  # pragma: no cover - defended against, impossible
                raise RuntimeError(f"routing loop through AS {asn_of[i]}")
            seen.add(i)
            path.append(asn_of[i])


def compute_routing_outcome(
    topology: ASGraph | RoutingContext,
    destination: int,
    attacker: int | None = None,
    deployment: Deployment | None = None,
    model: RankModel = BASELINE,
    attack: AttackStrategy = DEFAULT_ATTACK,
) -> RoutingOutcome:
    """Compute the unique stable routing state (Theorem 2.1).

    Args:
        topology: the AS graph, or a prebuilt :class:`RoutingContext`
            (build one when calling repeatedly on the same graph).
        destination: the victim AS ``d`` originating the prefix.
        attacker: the attacking AS ``m``; None for normal conditions.
        deployment: the secure set ``S``; defaults to ``S = ∅``.
        model: the routing-policy model; defaults to the baseline
            (origin authentication only).
        attack: the attacker strategy (:mod:`repro.core.attacks`);
            defaults to the paper's Section 3.1 one-hop hijack — ``m``
            announces the bogus path ``"m d"`` via legacy BGP to all
            its neighbors.

    Returns:
        A :class:`RoutingOutcome`.
    """
    ctx = _as_context(topology)
    deployment = deployment or _EMPTY_DEPLOYMENT
    dest_i, att_i = ctx._check_pair(destination, attacker)
    signing, ranking = ctx.deployment_masks(deployment)
    resolved = ctx._resolve_attack(dest_i, att_i, signing, ranking, model, attack)
    ctx._run(dest_i, att_i, signing, ranking, model, resolved)
    return ctx._snapshot(
        destination, attacker, deployment, model, dest_i, att_i, attack, resolved
    )


def normal_conditions(
    topology: ASGraph | RoutingContext,
    destination: int,
    deployment: Deployment | None = None,
    model: RankModel = BASELINE,
) -> RoutingOutcome:
    """Routing to ``destination`` when nobody attacks (m = ∅)."""
    return compute_routing_outcome(
        topology, destination, attacker=None, deployment=deployment, model=model
    )


# ----------------------------------------------------------------------
# Destination-major incremental sweeps
# ----------------------------------------------------------------------
class DestinationSweep:
    """Amortized attacker sweeps against one ``(d, deployment, model)``.

    The paper's metric evaluates many attackers per destination; a full
    fixing pass per ``(m, d)`` pair recomputes the attacker-free routing
    state of ``d`` from scratch every time.  This class runs that
    attacker-free pass **once**, snapshots the stable arrays, and
    computes each attacker's stable state by *delta re-fixing*: only the
    region whose record actually changes relative to normal conditions
    is reprocessed, and the touched entries are restored from the
    snapshot between attackers.  Per-attacker cost is ``O(dirty region)``
    instead of ``O(|V| + |E|)``.

    Correctness rests on two invariants of the fixing pass:

    * **Dependency closure** — a record can change only through its
      baseline next-hop set (reach/wire/choice/endpoint all flow through
      ``nhops``), so resetting the reverse-``nhops`` closure of the
      attacker invalidates every AS whose baseline state is void;
    * **Monotone frontier** — any *new* route the attack introduces
      reaches an AS through a strictly increasing rank key, so a clean
      fixed AS needs re-fixing only when a dirty neighbor's re-fixed
      route offers a key ``<=`` its baseline key (detected during the
      delta pass and handled by dynamically invalidating that AS, its
      dependency closure, and re-collecting offers for any pending node
      that had accumulated an offer from the invalidated region).

    Both invalidation channels preserve the Dijkstra order of the delta
    pass (an invalidated AS re-enters the frontier above every key
    popped so far), so the pass fixes exactly the stable state of
    Theorem 2.1 — differential tests hold it bit-identical to the
    per-pair engine and to :mod:`repro.core.refimpl`.

    The sweep owns the context's scratch buffers while it works; if
    another computation uses the context in between, the next delta
    detects it (via ``RoutingContext._sweep_owner``) and resynchronizes
    from the snapshot in one ``O(n)`` copy.  Like the context itself, a
    sweep is not thread-safe; fork workers each own a clone.

    Example:
        One sweep amortizes many attackers against one destination and
        is bit-identical to the per-pair engine:

        >>> from repro.topology.graph import ASGraph
        >>> g = ASGraph()
        >>> for customer, provider in [(2, 1), (3, 1), (4, 2), (5, 3)]:
        ...     g.add_customer_provider(customer, provider)
        >>> sweep = DestinationSweep(g, destination=4)
        >>> sweep.baseline_counts()   # attacker-free happy bounds
        (4, 4)
        >>> sweep.counts([5, 3, 1])   # (lower, upper, num_sources) each
        [(2, 2, 3), (1, 2, 3), (1, 1, 3)]
        >>> [compute_routing_outcome(g, 4, attacker=m).count_happy()
        ...  for m in (5, 3, 1)]
        [(2, 2), (1, 2), (1, 1)]
    """

    __slots__ = (
        "__weakref__",
        "ctx",
        "destination",
        "deployment",
        "model",
        "attack",
        "_dest_i",
        "_root_att",
        "_dest_signed",
        "_last_res",
        "_signing",
        "_ranking",
        "_b_fixed",
        "_b_key",
        "_b_cls",
        "_b_len",
        "_b_reach",
        "_b_wire",
        "_b_sec",
        "_b_choice",
        "_b_endpoint",
        "_b_nhops",
        "_b_counts",
        "_dep",
        "_dirty",
        "delta_kernel",
        "last_delta_path",
        "_needs_restore",
        "_np_base",
        "_small_aborts",
        "_delta_seq",
    )

    def __init__(
        self,
        topology: ASGraph | RoutingContext,
        destination: int,
        deployment: Deployment | None = None,
        model: RankModel = BASELINE,
        attack: AttackStrategy = DEFAULT_ATTACK,
        delta_kernel: str = "auto",
    ) -> None:
        ctx = _as_context(topology)
        self.ctx = ctx
        self.destination = destination
        self.deployment = deployment = deployment or _EMPTY_DEPLOYMENT
        self.model = model
        self.attack = attack
        if delta_kernel not in ("auto", "pure", "np", "dense"):
            raise ValueError(
                f"delta_kernel must be 'auto', 'pure', 'np' or 'dense', "
                f"got {delta_kernel!r}"
            )
        if delta_kernel in ("np", "dense") and _np is None:
            raise RuntimeError(f"delta_kernel={delta_kernel!r} requires numpy")
        #: which delta implementation :meth:`_delta` dispatches to:
        #: ``"auto"`` (the hybrid policy), or forced ``"pure"`` /
        #: ``"np"`` (vectorized) / ``"dense"`` (full-pass fall-back).
        self.delta_kernel = delta_kernel
        #: the path the most recent delta actually ran — ``"pure"``,
        #: ``"vectorized"`` or ``"dense"`` (None before the first).
        self.last_delta_path: str | None = None
        #: Adaptive hybrid memory: consecutive small-estimate deltas
        #: whose pure retry blew its budget.  Attacker avalanches are
        #: invisible to the closure estimate, but within one sweep they
        #: repeat — after a few, small regions skip the pure retry and
        #: let the wave kernel's restart accounting pick dense directly.
        self._small_aborts = 0
        self._delta_seq = 0
        self._needs_restore = True
        self._np_base: dict | None = None
        self._last_res = DEFAULT_RESOLVED
        dest_i, _ = ctx._check_pair(destination, None)
        self._dest_i = dest_i
        try:
            self._root_att
        except AttributeError:
            #: index of an attacker rooted *in the baseline itself* (-1
            #: for the normal attacker-free baseline; ``_AttackerChain``
            #: assigns its attacker before delegating here).
            self._root_att = -1
        signing, ranking = ctx.deployment_masks(deployment)
        self._signing = signing
        self._ranking = ranking
        self._dest_signed = bool(signing[dest_i])
        # The baseline fixing pass, run exactly once per sweep.
        self._run_baseline()
        self._take_baseline()
        self._dirty = bytearray(ctx.n)
        ctx._sweep_owner = weakref.ref(self)

    def _run_baseline(self) -> None:
        """Run the sweep's baseline fixing pass into the scratch buffers
        (attacker-free here; the rollout attacker-chain walker overrides
        this to root its attacker)."""
        self.ctx._run(
            self._dest_i, -1, self._signing, self._ranking, self.model
        )

    def _take_baseline(self) -> None:
        """Snapshot the scratch buffers as this sweep's baseline.

        The baselines are mutable (bytearrays/lists) so the rollout
        advance (:class:`RolloutSweep`) can commit a delta in place;
        a plain :class:`DestinationSweep` never mutates them.

        On vectorized contexts (with the numpy delta enabled) the
        snapshot is taken straight from the bucket kernel's int64
        scratch arrays instead: the per-destination O(n) python
        list/bytearray copies disappear, and the pure fall-back path
        reads baseline scalars through the numpy views.  The
        reverse-dependency lists are built lazily (:meth:`_ensure_dep`)
        because the numpy delta kernel walks a CSR twin of them
        (:meth:`_np_finish_base`) and never needs the list form.
        """
        ctx = self.ctx
        ctx._materialize_nhops()
        # Inner next-hop lists are shared with the scratch arrays; the
        # delta pass never mutates a restored list (every mutation path
        # starts with a reset to None followed by a fresh list), which is
        # the same contract _snapshot relies on.
        self._b_nhops = list(ctx._nhops)
        self._b_counts = ctx._last_counts
        self._dep = None
        self._np_base = None
        if (
            ctx.vectorized
            and _np is not None
            and self.delta_kernel in ("auto", "np")
        ):
            st = ctx._np_scratch
            base = {
                name: st[name].copy()
                for name in (
                    "fixed", "key", "cls", "len", "reach",
                    "wire", "sec", "choice", "endp",
                )
            }
            self._b_fixed = None
            self._b_key = None
            self._b_cls = None
            self._b_len = None
            self._b_reach = None
            self._b_wire = None
            self._b_sec = None
            self._b_choice = None
            self._b_endpoint = None
            self._np_base = base
            # The pairs stash is fresh here: a vectorized baseline pass
            # always defers next-hops, so the materialize above rebuilt
            # them (and the stash) from this very state.
            self._np_finish_base(base, ctx._np_pairs)
            return
        self._b_fixed = bytearray(ctx._fixed)
        self._b_key = list(ctx._key)
        self._b_cls = bytearray(ctx._cls)
        self._b_len = list(ctx._len)
        self._b_reach = bytearray(ctx._reach)
        self._b_wire = bytearray(ctx._wire)
        self._b_sec = bytearray(ctx._sec)
        self._b_choice = list(ctx._choice)
        self._b_endpoint = bytearray(ctx._endpoint)

    def _ensure_dep(self) -> list[list[int]]:
        """Reverse-dependency lists over the baseline next-hop sets:
        ``dep[u]`` holds every v whose baseline BPR set contains u.
        Built on the first pure delta, amortized over all attackers."""
        dep = self._dep
        if dep is None:
            dep = [[] for _ in range(self.ctx.n)]
            for v, h in enumerate(self._b_nhops):
                if h:
                    for u in h:
                        dep[u].append(v)
            self._dep = dep
        return dep

    def _np_baseline(self) -> dict:
        """The numpy view of the baseline snapshot (for the vectorized
        delta kernel), built from the python baselines when the sweep
        snapshotted through them (pure contexts)."""
        base = self._np_base
        if base is None:
            np = _np
            n = self.ctx.n
            base = {
                "fixed": np.frombuffer(
                    bytes(self._b_fixed), dtype=np.uint8
                ).astype(np.bool_),
                "key": np.fromiter(
                    (k if k < _NP_INF else _NP_INF for k in self._b_key),
                    np.int64,
                    count=n,
                ),
                "cls": np.frombuffer(
                    bytes(self._b_cls), dtype=np.uint8
                ).astype(np.int64),
                "len": np.array(self._b_len, dtype=np.int64),
                "reach": np.frombuffer(
                    bytes(self._b_reach), dtype=np.uint8
                ).astype(np.int64),
                "wire": np.frombuffer(
                    bytes(self._b_wire), dtype=np.uint8
                ).astype(np.int64),
                "sec": np.frombuffer(
                    bytes(self._b_sec), dtype=np.uint8
                ).astype(np.int64),
                "choice": np.array(self._b_choice, dtype=np.int64),
                "endp": np.frombuffer(
                    bytes(self._b_endpoint), dtype=np.uint8
                ).astype(np.int64),
            }
            self._np_base = base
            self._np_finish_base(base)
        return base

    def _np_finish_base(self, base: dict, pairs: tuple | None = None) -> None:
        """Attach the dependency structure the numpy delta kernel walks:
        the baseline next-hop membership pairs ``(us, vs)``, their
        reverse CSR (``dep_start``/``dep_v``: u → dependents v), the
        per-node BPR size ``nhcnt`` and its wire-secure member count
        ``bwirecnt``, plus two reusable per-delta accumulators."""
        np = _np
        n = self.ctx.n
        if pairs is None:
            us_l: list[int] = []
            vs_l: list[int] = []
            for v, h in enumerate(self._b_nhops):
                if h:
                    us_l.extend(h)
                    vs_l.extend([v] * len(h))
            pairs = (
                np.array(us_l, dtype=np.int64),
                np.array(vs_l, dtype=np.int64),
            )
        self._np_attach_dep(base, pairs[0], pairs[1])
        base["deadcnt"] = np.zeros(n, dtype=np.int64)
        base["deadwire"] = np.zeros(n, dtype=np.int64)

    def _np_attach_dep(self, base: dict, us, vs) -> None:
        """(Re)build the pair-derived part of :meth:`_np_finish_base`."""
        np = _np
        n = self.ctx.n
        base["us"] = us
        base["vs"] = vs
        order = np.argsort(us, kind="stable")
        dep_u = us[order]
        base["dep_v"] = vs[order]
        counts = np.bincount(dep_u, minlength=n)
        dep_start = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=dep_start[1:])
        base["dep_start"] = dep_start
        base["nhcnt"] = np.bincount(vs, minlength=n).astype(np.int64)
        bwirecnt = np.zeros(n, dtype=np.int64)
        np.add.at(bwirecnt, vs, base["wire"][us])
        base["bwirecnt"] = bwirecnt

    # ------------------------------------------------------------------
    @property
    def num_sources(self) -> int:
        """Sources per attack: |V| minus destination and attacker."""
        return self.ctx.n - 2

    def baseline_counts(self) -> tuple[int, int]:
        """``(happy_lower, happy_upper)`` under normal conditions."""
        return self._b_counts[0], self._b_counts[1]

    def baseline_outcome(self) -> RoutingOutcome:
        """The attacker-free :class:`RoutingOutcome` (``m = None``)."""
        self._ensure_scratch()
        ctx = self.ctx
        ctx._last_counts = self._b_counts
        return ctx._snapshot(
            self.destination, None, self.deployment, self.model,
            self._dest_i, -1, self.attack, DEFAULT_RESOLVED,
        )

    def happiness_counts(self, attacker: int) -> tuple[int, int, int]:
        """``(happy_lower, happy_upper, num_sources)`` for one attacker."""
        counts, touched = self._delta(self._attacker_index(attacker))
        self._restore(touched)
        return counts[0], counts[1], self.ctx.n - 2

    def counts(self, attackers: Sequence[int]) -> list[tuple[int, int, int]]:
        """:meth:`happiness_counts` for many attackers in one sweep."""
        return [self.happiness_counts(m) for m in attackers]

    def outcome(self, attacker: int) -> RoutingOutcome:
        """The full stable state for one attacker (API-compatible with
        :func:`compute_routing_outcome`, computed incrementally)."""
        att_i = self._attacker_index(attacker)
        counts, touched = self._delta(att_i, need_state=True)
        ctx = self.ctx
        ctx._last_counts = counts
        snap = ctx._snapshot(
            self.destination, attacker, self.deployment, self.model,
            self._dest_i, att_i, self.attack, self._last_res,
        )
        self._restore(touched)
        return snap

    # ------------------------------------------------------------------
    def _attacker_index(self, attacker: int) -> int:
        att_i = self.ctx.index_of.get(attacker)
        if att_i is None:
            raise ValueError(f"attacker AS {attacker} not in graph")
        if att_i == self._dest_i:
            raise ValueError("attacker and destination must differ")
        self._ensure_scratch()
        return att_i

    def _ensure_scratch(self) -> None:
        """Resync the scratch buffers from the snapshot if another
        computation used the context since the last delta."""
        ctx = self.ctx
        owner = ctx._sweep_owner
        if owner is not None and owner() is self:
            return
        if self._b_fixed is None:
            # numpy snapshot: bulk-decode it into the python scratch
            # (the same serialization _run_np's write-back uses, so the
            # values are bit-identical to a pure-kernel pass).
            np = _np
            base = self._np_base
            ctx._fixed[:] = base["fixed"].tobytes()
            ctx._cls[:] = base["cls"].astype(np.uint8).tobytes()
            ctx._reach[:] = base["reach"].astype(np.uint8).tobytes()
            ctx._wire[:] = base["wire"].astype(np.uint8).tobytes()
            ctx._sec[:] = base["sec"].astype(np.uint8).tobytes()
            ctx._endpoint[:] = base["endp"].astype(np.uint8).tobytes()
            ctx._len[:] = base["len"].tolist()
            ctx._choice[:] = base["choice"].tolist()
            key = base["key"]
            key_list = key.tolist()
            for i in np.flatnonzero(key == _NP_INF).tolist():
                key_list[i] = _INF
            ctx._key[:] = key_list
        else:
            ctx._fixed[:] = self._b_fixed
            ctx._key[:] = self._b_key
            ctx._cls[:] = self._b_cls
            ctx._len[:] = self._b_len
            ctx._reach[:] = self._b_reach
            ctx._wire[:] = self._b_wire
            ctx._sec[:] = self._b_sec
            ctx._choice[:] = self._b_choice
            ctx._endpoint[:] = self._b_endpoint
        ctx._nhops[:] = self._b_nhops
        ctx._nhops_valid = True
        ctx._sweep_owner = weakref.ref(self)

    def _restore(self, touched: list[int] | None) -> None:
        """Return every touched scratch entry to its baseline value.

        ``touched=None`` is the dense fall-back's sentinel: the whole
        scratch state is suspect (reconciled in one bulk resync) — or,
        when the dense pass ran in count-only mode, untouched
        (``_needs_restore`` False) and there is nothing to do.  The
        numpy delta's count-only path clears ``_needs_restore`` the same
        way: it computes on compressed copies and never writes the
        scratch, so restoring would only waste the win.
        """
        if not self._needs_restore:
            self._needs_restore = True
            return
        if touched is None:
            self.ctx._sweep_owner = None
            self._ensure_scratch()
            return
        if self._b_fixed is None:
            self._restore_np(touched)
            return
        ctx = self.ctx
        fixed = ctx._fixed
        key_l = ctx._key
        cls_b = ctx._cls
        len_l = ctx._len
        reach_b = ctx._reach
        wire_b = ctx._wire
        sec_b = ctx._sec
        choice_l = ctx._choice
        endp_b = ctx._endpoint
        nhops = ctx._nhops
        b_fixed = self._b_fixed
        b_key = self._b_key
        b_cls = self._b_cls
        b_len = self._b_len
        b_reach = self._b_reach
        b_wire = self._b_wire
        b_sec = self._b_sec
        b_choice = self._b_choice
        b_endp = self._b_endpoint
        b_nhops = self._b_nhops
        dirty = self._dirty
        for x in touched:
            fixed[x] = b_fixed[x]
            key_l[x] = b_key[x]
            cls_b[x] = b_cls[x]
            len_l[x] = b_len[x]
            reach_b[x] = b_reach[x]
            wire_b[x] = b_wire[x]
            sec_b[x] = b_sec[x]
            choice_l[x] = b_choice[x]
            endp_b[x] = b_endp[x]
            nhops[x] = b_nhops[x]
            dirty[x] = 0

    def _restore_np(self, touched: list[int]) -> None:
        """:meth:`_restore` against the numpy snapshot (vectorized
        contexts keep no python baseline copies)."""
        ctx = self.ctx
        fixed = ctx._fixed
        key_l = ctx._key
        cls_b = ctx._cls
        len_l = ctx._len
        reach_b = ctx._reach
        wire_b = ctx._wire
        sec_b = ctx._sec
        choice_l = ctx._choice
        endp_b = ctx._endpoint
        nhops = ctx._nhops
        base = self._np_base
        b_fixed = base["fixed"]
        b_key = base["key"]
        b_cls = base["cls"]
        b_len = base["len"]
        b_reach = base["reach"]
        b_wire = base["wire"]
        b_sec = base["sec"]
        b_choice = base["choice"]
        b_endp = base["endp"]
        b_nhops = self._b_nhops
        dirty = self._dirty
        for x in touched:
            fixed[x] = 1 if b_fixed[x] else 0
            k = int(b_key[x])
            key_l[x] = _INF if k == _NP_INF else k
            cls_b[x] = b_cls[x]
            len_l[x] = int(b_len[x])
            reach_b[x] = b_reach[x]
            wire_b[x] = b_wire[x]
            sec_b[x] = b_sec[x]
            choice_l[x] = int(b_choice[x])
            endp_b[x] = b_endp[x]
            nhops[x] = b_nhops[x]
            dirty[x] = 0

    def _resolve_delta(self, att_i: int, advance: bool) -> ResolvedAttack | None:
        """Resolve the attacker strategy for one delta (shared by every
        kernel path).  The snapshot holds the attacker-free state, so
        ``needs_baseline`` strategies read the attacker's legitimate
        record for free; on an advance the attacker is already rooted in
        the baseline and its resolution was fixed when the chain walker
        built it."""
        if att_i < 0:
            return None
        if advance:
            return self._last_res
        attack = self.attack
        baseline = None
        if attack.needs_baseline:
            bf = self._b_fixed
            if bf is None:
                base = self._np_base
                baseline = AttackerBaseline(
                    has_route=bool(base["fixed"][att_i]),
                    length=int(base["len"][att_i]),
                    wire_secure=bool(base["wire"][att_i]),
                )
            else:
                baseline = AttackerBaseline(
                    has_route=bool(bf[att_i]),
                    length=self._b_len[att_i],
                    wire_secure=bool(self._b_wire[att_i]),
                )
        res = attack.resolve(dest_signed=self._dest_signed, baseline=baseline)
        self._last_res = res
        return res

    def _delta(
        self,
        att_i: int,
        extra_resets: Sequence[int] | None = None,
        need_state: bool = False,
    ) -> tuple[tuple[int, int, int, int, int, int], list[int] | None]:
        """Delta re-fix for one attacker or advance: kernel dispatch.

        Three implementations compute the same bit-identical result:

        * ``"pure"`` — the interpreted heap loop (:meth:`_delta_pure`),
          the differential oracle.  Fastest on tiny dirty regions.
        * ``"vectorized"`` — the compressed numpy bucket kernel
          (:mod:`repro.core._delta_np`).  Fastest on mid-size regions;
          its count-only mode never touches the python scratch at all.
        * ``"dense"`` — one full :meth:`RoutingContext._run_np` pass
          (:meth:`_delta_dense`), returning ``touched=None``.  Fastest
          once the dirty region stops being small relative to ``n``.

        Under the default ``delta_kernel="auto"`` policy on a
        vectorized context the numpy kernel runs first — its closure
        sweep doubles as the region-size estimate — and cedes to the
        pure loop below
        :data:`DELTA_VEC_MIN` touched nodes or to the dense pass above
        ``n * DELTA_NP_BUDGET``; a pure pass that grows past
        ``n * DELTA_PURE_BUDGET`` likewise aborts to dense.  On a
        pure-python context ``"auto"`` is simply the pure loop: the
        numpy estimate and the dense fall-back both need the vectorized
        state the context does not carry.  Forced
        kernels (``"pure"``/``"np"``/``"dense"``) never switch paths.
        The path taken is recorded in :attr:`last_delta_path`.

        ``need_state=True`` asks for the full re-fixed state in the
        scratch buffers (outcome snapshots, rollout commits); without it
        count-only paths may skip the write-back entirely.
        """
        self._needs_restore = True
        advance = extra_resets is not None
        res = self._resolve_delta(att_i, advance)
        kernel = self.delta_kernel
        if kernel == "dense":
            self.last_delta_path = "dense"
            return self._delta_dense(att_i, res, advance, need_state)
        n = self.ctx.n
        budget = None
        if kernel == "np" or (
            kernel == "auto" and _np is not None and self.ctx.vectorized
        ):
            from . import _delta_np as _dnp

            if kernel == "auto" and self._small_aborts >= 4:
                # Avalanche regime: the last few small-estimate deltas
                # all blew the pure retry's budget, so this sweep's
                # attackers rewire far past what the closure can see.
                # Skip the estimate and retry entirely — one dense pass
                # IS the likely outcome — but let every 16th delta walk
                # the normal path so the memory can decay when the
                # attacker mix changes.
                self._delta_seq += 1
                if self._delta_seq & 15:
                    self.last_delta_path = "dense"
                    return self._delta_dense(att_i, res, advance, need_state)
            if kernel == "np":
                np_budget = small = None
            else:
                np_budget = max(_DELTA_NP_BUDGET_MIN, int(n * DELTA_NP_BUDGET))
                small = DELTA_VEC_MIN
            try:
                counts, touched = _dnp.delta_np(
                    self, att_i, extra_resets, res, need_state,
                    budget=np_budget, small=small,
                )
            except _DeltaSmall:
                budget = max(
                    _DELTA_PURE_BUDGET_MIN, int(n * DELTA_PURE_BUDGET)
                )
            except _DeltaOversize:
                # A closure-oversize cede wasted the walked prefix the
                # same way a blown pure retry does — feed the regime
                # memory so repeat offenders skip straight to dense.
                if small is not None and self._small_aborts < 8:
                    self._small_aborts += 1
                self.last_delta_path = "dense"
                return self._delta_dense(att_i, res, advance, need_state)
            else:
                if small is not None and self._small_aborts:
                    self._small_aborts = max(0, self._small_aborts - 2)
                self.last_delta_path = "vectorized"
                return counts, touched
        try:
            counts, touched = self._delta_pure(att_i, extra_resets, res, budget)
        except _DeltaOversize as oversize:
            # The pure pass mutated the scratch mid-flight, but it only
            # ever mutates entries it has appended to its touched list —
            # the same invariant the normal path's restore relies on.
            # So the abort undo is the identical O(touched) baseline
            # copy-back, not a full scratch resync, and the scratch
            # stays owned and clean for the next delta.
            self._restore(oversize.args[0])
            self._needs_restore = True
            if budget is not None and self._small_aborts < 8:
                self._small_aborts += 1
            self.last_delta_path = "dense"
            return self._delta_dense(att_i, res, advance, need_state)
        if budget is not None and self._small_aborts:
            # Successes weigh double: a sweep with a mixed attacker
            # population (some quiet, some avalanching) should keep
            # trying the cheap pure retry, not lock into dense.
            self._small_aborts = max(0, self._small_aborts - 2)
        self.last_delta_path = "pure"
        return counts, touched

    def _delta_dense(
        self,
        att_i: int,
        res: ResolvedAttack | None,
        advance: bool,
        need_state: bool,
    ) -> tuple[tuple[int, int, int, int, int, int], None]:
        """Full-pass fall-back of the hybrid policy: recompute the
        attacked (or advanced) state from scratch in one vectorized
        pass — cheaper than a delta whose dirty region stopped being
        small.  Returns ``touched=None``; in count-only mode on a numpy
        build the pass also leaves the python scratch (and the sweep's
        ownership of it) completely untouched."""
        ctx = self.ctx
        run_res = res if res is not None else DEFAULT_RESOLVED
        if _np is not None:
            ctx._run_np(
                self._dest_i, att_i, self._signing, self._ranking,
                self.model, run_res, writeback=need_state,
            )
            self._needs_restore = need_state
        else:  # pragma: no cover - dense is never selected without numpy
            ctx._run(
                self._dest_i, att_i, self._signing, self._ranking,
                self.model, run_res,
            )
        return ctx._last_counts, None

    def _delta_pure(
        self,
        att_i: int,
        extra_resets: Sequence[int] | None,
        res: ResolvedAttack | None,
        budget: int | None = None,
    ) -> tuple[tuple[int, int, int, int, int, int], list[int]]:
        """Delta re-fix for one attacker, or a deployment advance.

        Two modes share the pass:

        * **attacker delta** (``extra_resets is None``): root ``att_i``'s
          claimed announcement into the attacker-free baseline (steps
          1-5 below);
        * **deployment advance** (``extra_resets`` given — the newly-
          secured indices, after :class:`RolloutSweep` flipped their
          bits in the signing/ranking masks): void the seeds' closures
          instead; ``att_i`` then names an attacker *already rooted in
          the baseline* (-1 for the attacker-free baseline) so the
          boundary collection keeps offering its claimed path.

        Leaves the scratch buffers holding the re-fixed stable state and
        returns ``(counts, touched)``; the caller must either
        :meth:`_restore` ``touched`` (attacker deltas) or commit it as
        the new baseline (rollout advances) before the next delta.
        """
        ctx = self.ctx
        dest_i = self._dest_i
        fixed = ctx._fixed
        key_l = ctx._key
        cls_b = ctx._cls
        len_l = ctx._len
        reach_b = ctx._reach
        wire_b = ctx._wire
        sec_b = ctx._sec
        choice_l = ctx._choice
        endp_b = ctx._endpoint
        nhops = ctx._nhops
        edges = ctx._edges
        signing = self._signing
        ranking = self._ranking
        dirty = self._dirty
        dep = self._ensure_dep()
        model = self.model
        coeffs = model.packed_coeffs()
        if coeffs is not None:
            cm, lm, sm = coeffs
            key_fn = None
        else:
            cm = lm = sm = 0
            key_fn = model.packed_key
        uses_sec = model.uses_security
        dest_signed = 1 if signing[dest_i] else 0
        advance = extra_resets is not None
        if att_i >= 0:
            att_active = res.active
            att_ln = res.length + 1  # length ranked by the attacker's neighbors
            att_wire = 1 if res.wire else 0
            att_exp = res.export_all
        else:
            att_active = False
            att_ln = att_wire = 0
            att_exp = False
        heap: list[int] = []
        push = heapq.heappush
        pop = heapq.heappop
        touched: list[int] = []
        #: clean nodes whose BPR set was *pruned* (``dirty == 2``): their
        #: key/class/length/wire are untouched, so only reach/choice/
        #: endpoint need the soft recompute at the end.
        soft_prunes: list[int] = []

        # Inner helpers bind the hot arrays as default arguments: the
        # delta pass calls them thousands of times per attacker, and the
        # LOAD_FAST locals are measurably cheaper than closure cells.
        def reset_closure(
            w: int,
            dirty=dirty,
            touched=touched,
            fixed=fixed,
            key_l=key_l,
            sec_b=sec_b,
            wire_b=wire_b,
            nhops=nhops,
            dep=dep,
            signing=signing,
            soft_prunes=soft_prunes,
            budget=budget,
        ) -> list[int]:
            """Hard-reset ``w`` and the part of its baseline dependency
            closure whose records cannot survive; returns the newly
            (hard-)reset nodes.

            A dependent that keeps at least one live BPR member does
            *not* need the hard reset: all members tie on the rank key,
            so its key/class/length/wire are intact and only its reach/
            choice/endpoint can shift — it is *pruned* instead (the dead
            members are dropped, ``dirty = 2``) and recomputed by the
            soft phase, exactly like a deferred knife-edge tie.  The one
            exception is a prune that would flip the node's wire
            security (every surviving offer signed where the old mix was
            not, at a signing node): that changes what it offers
            downstream, so it is hard-reset after all.  Mixed-wire BPR
            sets only exist where the rank key ignores the security bit,
            so the surviving-member scan is exact, not heuristic.

            Only the fields the re-fix actually relies on are reset:
            ``fixed``/``key`` drive the pass, ``nhops`` must be None for
            the stale-offer repair test, and ``sec`` because the pop
            step sets it conditionally.  The rest (cls/len/reach/wire/
            choice/endpoint) are overwritten by the first improvement or
            at pop time and are never read while unfixed.
            """
            stack = [w]
            resets: list[int] = []
            while stack:
                x = stack.pop()
                was = dirty[x]
                if was == 1:
                    continue
                dirty[x] = 1
                if not was:
                    touched.append(x)
                resets.append(x)
                fixed[x] = 0
                key_l[x] = _INF
                sec_b[x] = 0
                nhops[x] = None
                for y in dep[x]:
                    if dirty[y] == 1 or not fixed[y]:
                        continue
                    h = nhops[y]
                    if h is None:
                        continue
                    if len(h) == 1:
                        # Singleton BPR set (the common case): either
                        # its only member just died (hard reset) or this
                        # is a stale dependency entry (rollout chains).
                        if dirty[h[0]] == 1:
                            stack.append(y)
                        continue
                    live = 0
                    for u in h:
                        if dirty[u] != 1:
                            live += 1
                    if not live:
                        stack.append(y)
                        continue
                    if live == len(h):
                        continue  # stale dependency entry (rollout chains)
                    keep = [u for u in h if dirty[u] != 1]
                    if (
                        signing[y]
                        and not wire_b[y]
                        and all(wire_b[u] for u in keep)
                    ):
                        # Pruning the insecure members would flip y's
                        # wire security — a record change after all.
                        stack.append(y)
                        continue
                    if not dirty[y]:
                        dirty[y] = 2
                        touched.append(y)
                        soft_prunes.append(y)
                    # Copy-on-write: the baseline inner list is shared
                    # with the snapshot and must stay pristine.
                    nhops[y] = keep
            if budget is not None and len(touched) > budget:
                raise _DeltaOversize(touched, True)
            return resets

        def gather(
            x: int,
            edges=edges,
            fixed=fixed,
            key_l=key_l,
            cls_b=cls_b,
            len_l=len_l,
            reach_b=reach_b,
            wire_b=wire_b,
            nhops=nhops,
            ranking=ranking,
            heap=heap,
            push=push,
            dest_i=dest_i,
            att_i=att_i,
            dest_signed=dest_signed,
            att_active=att_active,
            att_ln=att_ln,
            att_wire=att_wire,
            att_exp=att_exp,
            cm=cm,
            lm=lm,
            sm=sm,
            key_fn=key_fn,
            RouteClass=RouteClass,
        ) -> None:
            """Collect offers to a freshly reset ``x`` from every fixed
            neighbor (roots included, with their root semantics)."""
            for e in edges[x]:
                u = e >> 3
                if not fixed[u]:
                    continue
                # From x's edge entry: ucls is the class u assigns to a
                # route learned from x; relationships are symmetric, so
                # the class x assigns to a route from u is 2 - ucls, and
                # u may export to x iff u's best route is a customer
                # route or u is x's provider (ucls == CUSTOMER).
                ucls = (e >> 1) & 3
                if u == dest_i:
                    ln = 1
                    wire_u = dest_signed
                    reach_u = 1
                elif u == att_i:
                    # The attacker root offers its claimed path — unless
                    # it is silent, or its export scope excludes x (x is
                    # the attacker's customer iff ucls == CUSTOMER).
                    if not (att_active and (att_exp or ucls == 0)):
                        continue
                    ln = att_ln
                    wire_u = att_wire
                    reach_u = 2
                else:
                    if cls_b[u] != 0 and ucls != 0:
                        continue
                    ln = len_l[u] + 1
                    wire_u = wire_b[u]
                    reach_u = reach_b[u]
                icls = 2 - ucls
                if key_fn is None:
                    k = icls * cm + ln * lm + (
                        0 if (wire_u and ranking[x]) else sm
                    )
                else:
                    k = key_fn(RouteClass(icls), ln, bool(wire_u and ranking[x]))
                cur = key_l[x]
                if k < cur:
                    key_l[x] = k
                    cls_b[x] = icls
                    len_l[x] = ln
                    reach_b[x] = reach_u
                    wire_b[x] = wire_u
                    nhops[x] = [u]
                    push(heap, (k << PACK_SHIFT) | x)
                elif k == cur:
                    nhops[x].append(u)  # type: ignore[union-attr]
                    reach_b[x] |= reach_u
                    if not wire_u:
                        wire_b[x] = 0

        def invalidate(
            w: int,
            edges=edges,
            fixed=fixed,
            key_l=key_l,
            cls_b=cls_b,
            len_l=len_l,
            reach_b=reach_b,
            wire_b=wire_b,
            nhops=nhops,
            ranking=ranking,
            heap=heap,
            push=push,
            dest_i=dest_i,
            att_i=att_i,
            dest_signed=dest_signed,
            att_active=att_active,
            att_ln=att_ln,
            att_wire=att_wire,
            att_exp=att_exp,
            cm=cm,
            lm=lm,
            sm=sm,
            key_fn=key_fn,
            RouteClass=RouteClass,
        ) -> None:
            """Dynamically invalidate clean fixed ``w``: reset its
            dependency closure, re-collect each reset node's offers from
            its still-fixed neighbors, and repair unfixed nodes holding
            offers from the invalidated region.  Both directions of each
            reset node's adjacency are handled in one scan."""
            resets = reset_closure(w)
            repair: list[int] | None = None
            for x in resets:
                for e in edges[x]:
                    u = e >> 3
                    if fixed[u]:
                        # Offer u -> x (x was just reset); inline gather.
                        ucls = (e >> 1) & 3
                        if u == dest_i:
                            ln = 1
                            wire_u = dest_signed
                            reach_u = 1
                        elif u == att_i:
                            if not (att_active and (att_exp or ucls == 0)):
                                continue
                            ln = att_ln
                            wire_u = att_wire
                            reach_u = 2
                        else:
                            if cls_b[u] != 0 and ucls != 0:
                                continue
                            ln = len_l[u] + 1
                            wire_u = wire_b[u]
                            reach_u = reach_b[u]
                        icls = 2 - ucls
                        if key_fn is None:
                            k = icls * cm + ln * lm + (
                                0 if (wire_u and ranking[x]) else sm
                            )
                        else:
                            k = key_fn(
                                RouteClass(icls), ln, bool(wire_u and ranking[x])
                            )
                        cur = key_l[x]
                        if k < cur:
                            key_l[x] = k
                            cls_b[x] = icls
                            len_l[x] = ln
                            reach_b[x] = reach_u
                            wire_b[x] = wire_u
                            nhops[x] = [u]
                            push(heap, (k << PACK_SHIFT) | x)
                        elif k == cur:
                            nhops[x].append(u)  # type: ignore[union-attr]
                            reach_b[x] |= reach_u
                            if not wire_u:
                                wire_b[x] = 0
                    else:
                        # u is unfixed: if it accumulated x's (now void)
                        # offer, it must be repaired below.
                        h = nhops[u]
                        if h is not None and x in h:
                            if repair is None:
                                repair = [u]
                            else:
                                repair.append(u)
            if repair is None:
                return
            for x in repair:
                if nhops[x] is None:
                    continue  # already repaired via another reset
                # The node accumulated an offer from a now-invalid
                # record.  Every live offer it has received came from a
                # still-fixed neighbor, so wiping the accumulated state
                # and re-collecting from fixed neighbors reconstructs
                # exactly the valid offers (stale heap entries are
                # skipped by the key check at pop time).
                key_l[x] = _INF
                nhops[x] = None
                gather(x)

        # Deferred knife-edge ties: a re-fixed route that exactly ties a
        # clean node's baseline key without changing its wire security
        # alters only the node's BPR membership and reach — those are
        # patched by the cheap soft phase at the end instead of hard
        # re-fixing the node's whole dependency closure.
        ties: list[tuple[int, int]] = []

        if not advance:
            # Step 1: void the attacker's own record and everything whose
            # baseline best routes pass through it.
            resets0 = reset_closure(att_i)
            # Step 2: the attacker becomes a root announcing its claimed
            # path as the strategy resolved it (the paper default: the
            # bogus one-hop path "m d" via legacy BGP).
            fixed[att_i] = 1
            len_l[att_i] = res.length
            reach_b[att_i] = 2 if att_active else 0
            endp_b[att_i] = 2 if att_active else 0
            wire_b[att_i] = att_wire
            choice_l[att_i] = -1
            # Step 3: the claimed announcement reaches every neighbor in
            # the strategy's export scope (default: all of them — legacy
            # BGP lets the lie flow everywhere, since the claimed path
            # looks like a customer route the attacker may export to
            # anyone).
            pending: list[int] = []
            if att_active:
                for e in edges[att_i]:
                    if not (att_exp or (e & 1)):
                        continue  # outside the export scope (non-customer)
                    w = e >> 3
                    if dirty[w] == 1:
                        continue  # reset in step 1; gather() delivers it
                    vcls = (e >> 1) & 3
                    if key_fn is None:
                        k = vcls * cm + att_ln * lm + (
                            0 if (att_wire and ranking[w]) else sm
                        )
                    else:
                        k = key_fn(
                            RouteClass(vcls), att_ln, bool(att_wire and ranking[w])
                        )
                    if fixed[w]:
                        if w == dest_i:
                            continue
                        cur = key_l[w]
                        if k < cur or (k == cur and not att_wire and wire_b[w]):
                            pending.append(w)
                        elif k == cur:
                            ties.append((w, att_i))
                        continue
                    # Unreachable under normal conditions: first offer.
                    cur = key_l[w]
                    if k < cur:
                        key_l[w] = k
                        cls_b[w] = vcls
                        len_l[w] = att_ln
                        reach_b[w] = 2
                        wire_b[w] = att_wire
                        nhops[w] = [att_i]
                        push(heap, (k << PACK_SHIFT) | w)
            # Step 4: boundary offers for the step-1 resets (the attacker
            # is fixed now, so the collection includes the bogus offer
            # exactly once).
            for x in resets0:
                if x != att_i:
                    gather(x)
            # Step 5: neighbors whose baseline route loses to the bogus
            # one.
            for w in pending:
                if dirty[w] != 1:
                    invalidate(w)
        else:
            # Rollout advance: the newly-secured ASes are the only nodes
            # whose rank inputs changed (their ranking bit lowers the
            # keys they assign, their signing bit what they re-announce).
            # Void them and their dependency closures first, then collect
            # boundary offers under the already-updated masks; everything
            # further out is discovered by the same boundary-invalidation
            # machinery the attacker delta uses.  Roots (the destination
            # and, on attacker chains, the rooted attacker) never seed:
            # their announcements do not depend on their secure bits
            # (the destination's own signing flip rebuilds the sweep).
            resets0 = []
            for v in extra_resets:
                if dirty[v] != 1:
                    resets0.extend(reset_closure(v))
            for x in resets0:
                gather(x)

        # Step 6: the delta fixing pass, clean fixed nodes acting as a
        # frozen boundary whose re-offers were collected above.
        while heap:
            entry = pop(heap)
            v = entry & _IDX_MASK
            if fixed[v] or (entry >> PACK_SHIFT) != key_l[v]:
                continue
            nh = nhops[v]
            ch = nh[0] if len(nh) == 1 else min(nh)  # type: ignore[index, arg-type]
            choice_l[v] = ch
            endp_b[v] = endp_b[ch]
            w_ = wire_b[v]
            if w_:
                if uses_sec and ranking[v]:
                    sec_b[v] = 1
                if not signing[v]:
                    wire_b[v] = 0
            fixed[v] = 1
            if not dirty[v]:
                dirty[v] = 1  # first touch of a baseline-unreachable node
                touched.append(v)
                if budget is not None and len(touched) > budget:
                    raise _DeltaOversize(touched, True)
            exports_all = cls_b[v] == 0
            ln = len_l[v] + 1
            wire_v = wire_b[v]
            reach_v = reach_b[v]
            deferred: list[int] | None = None
            for e in edges[v]:
                if not (exports_all or (e & 1)):
                    continue
                w = e >> 3
                if fixed[w]:
                    # Boundary edge into the fixed region.  Re-fixed
                    # (dirty) targets and roots never need another look;
                    # a clean or soft-pruned target is invalidated when
                    # the re-fixed route beats its baseline key or ties
                    # it while flipping its wire security (deferred so
                    # this relaxation finishes first — the re-collection
                    # then delivers v's offer exactly once).  An exact
                    # tie that preserves wire security only widens the
                    # target's knife edge: record it for the soft phase.
                    if dirty[w] == 1 or w == dest_i or w == att_i:
                        continue
                    vcls = (e >> 1) & 3
                    if key_fn is None:
                        k = vcls * cm + ln * lm + (
                            0 if (wire_v and ranking[w]) else sm
                        )
                    else:
                        k = key_fn(
                            RouteClass(vcls), ln, bool(wire_v and ranking[w])
                        )
                    cur = key_l[w]
                    if k < cur or (k == cur and not wire_v and wire_b[w]):
                        if deferred is None:
                            deferred = [w]
                        else:
                            deferred.append(w)
                    elif k == cur:
                        ties.append((w, v))
                    continue
                vcls = (e >> 1) & 3
                if key_fn is None:
                    k = vcls * cm + ln * lm + (
                        0 if (wire_v and ranking[w]) else sm
                    )
                else:
                    k = key_fn(RouteClass(vcls), ln, bool(wire_v and ranking[w]))
                cur = key_l[w]
                if k < cur:
                    key_l[w] = k
                    cls_b[w] = vcls
                    len_l[w] = ln
                    reach_b[w] = reach_v
                    wire_b[w] = wire_v
                    nhops[w] = [v]
                    push(heap, (k << PACK_SHIFT) | w)
                elif k == cur:
                    nhops[w].append(v)  # type: ignore[union-attr]
                    reach_b[w] |= reach_v
                    if not wire_v:
                        wire_b[w] = 0
            if deferred is not None:
                for w in deferred:
                    if dirty[w] != 1:
                        invalidate(w)

        # Step 7 (soft phase): apply the deferred knife-edge ties and
        # recompute the pruned nodes.  Each tie adds one member to a
        # clean node's BPR set, each prune removed members whose records
        # were voided — either way the node's key, class, length and
        # wire security are untouched, so nothing it offers changes;
        # only reach, choice and endpoint can shift, and those flow
        # strictly upward in rank key through BPR membership.  The
        # worklist recomputes affected nodes in increasing key order:
        # clean consumers come from the baseline dependency lists,
        # re-fixed consumers from the new BPR sets of this pass.
        if ties or soft_prunes:
            cons: dict[int, list[int]] = {}
            for v in touched:
                if fixed[v] and dirty[v] == 1 and v != att_i:
                    for u in nhops[v]:  # type: ignore[union-attr]
                        lst = cons.get(u)
                        if lst is None:
                            cons[u] = [v]
                        else:
                            lst.append(v)
            work: list[int] = []
            for w in soft_prunes:
                if dirty[w] == 2:  # not promoted to a hard reset later
                    push(work, (key_l[w] << PACK_SHIFT) | w)
            for w, u in ties:
                if dirty[w] == 1:
                    continue  # hard-invalidated later; tie re-collected
                if dirty[w]:
                    nhops[w].append(u)  # type: ignore[union-attr]
                else:
                    dirty[w] = 2
                    touched.append(w)
                    # Copy-on-write: the baseline inner list is shared
                    # with the snapshot and must stay pristine.
                    nhops[w] = nhops[w] + [u]  # type: ignore[operator]
                push(work, (key_l[w] << PACK_SHIFT) | w)
            while work:
                x = pop(work) & _IDX_MASK
                nh = nhops[x]
                if nh is None:
                    continue  # promoted to a hard reset after enqueue
                r = 0
                for u in nh:
                    r |= reach_b[u]
                ch = nh[0] if len(nh) == 1 else min(nh)
                ep = endp_b[ch]
                if (
                    r == reach_b[x]
                    and ep == endp_b[x]
                    and ch == choice_l[x]
                ):
                    continue
                if not dirty[x]:
                    dirty[x] = 2
                    touched.append(x)
                reach_b[x] = r
                choice_l[x] = ch
                endp_b[x] = ep
                for y in dep[x]:
                    if dirty[y] != 1 and fixed[y]:
                        push(work, (key_l[y] << PACK_SHIFT) | y)
                lst = cons.get(x)
                if lst is not None:
                    for y in lst:
                        push(work, (key_l[y] << PACK_SHIFT) | y)

        # O(touched) count update: start from the baseline counts, swap
        # out each touched node's baseline contribution for its new one.
        # Roots never count: the attacker-delta's root *was* a source in
        # the attacker-free baseline (its contribution is swapped out),
        # while a chain baseline's rooted attacker never contributed.
        lo, up, alo, aup, sec_n, nfx = self._b_counts
        b_fixed = self._b_fixed
        if b_fixed is None:
            base = self._np_base
            b_fixed = base["fixed"]
            b_reach = base["reach"]
            b_sec = base["sec"]
        else:
            b_reach = self._b_reach
            b_sec = self._b_sec
        root_att = self._root_att
        for x in touched:
            if x != root_att and b_fixed[x]:
                r = b_reach[x]
                if r == 1:
                    lo -= 1
                    up -= 1
                elif r == 2:
                    alo -= 1
                    aup -= 1
                else:
                    up -= 1
                    aup -= 1
                sec_n -= b_sec[x]
                nfx -= 1
            if x != att_i and fixed[x]:
                r = reach_b[x]
                if r == 1:
                    lo += 1
                    up += 1
                elif r == 2:
                    alo += 1
                    aup += 1
                else:
                    up += 1
                    aup += 1
                sec_n += sec_b[x]
                nfx += 1
        # int() launders any numpy scalars picked up from an np-sourced
        # baseline: counts end up in json-serialized stores.
        return (
            int(lo), int(up), int(alo), int(aup), int(sec_n), int(nfx)
        ), touched


# ----------------------------------------------------------------------
# Rollout-major sweeps over nested-deployment chains
# ----------------------------------------------------------------------
class RolloutSweep(DestinationSweep):
    """A :class:`DestinationSweep` that walks a *nested-deployment
    chain* ``S_0 ⊆ S_1 ⊆ … ⊆ S_T`` for one destination.

    The paper's rollout figures (7a/7b/8/11) — and the far larger
    deployment-ordering sweeps of follow-up work — evaluate the same
    attacker set against the same destination under a chain of growing
    deployments.  A fresh sweep per step pays a full attacker-free
    fixing pass, snapshot and dependency build every time, although
    adjacent steps differ by a handful of newly-secured ASes.
    :meth:`advance` instead re-fixes only the region whose routing
    records can change when those ASes flip their secure bits — their
    ranking bit lowers the keys they assign, their signing bit upgrades
    what they re-announce — using the same boundary-invalidation and
    knife-edge-tie machinery as the attacker delta, and then *commits*
    the touched entries into the baseline snapshot instead of restoring
    them.

    Two further chain-structure savings stack on top:

    * the reverse-dependency lists are patched (append-only) for the
      committed entries instead of being rebuilt per step — stale
      entries only ever cause a harmless extra reset;
    * per-attacker results are memoized across steps: an attacker delta
      reads baseline records only inside its touched region and that
      region's neighborhood, so when an advance leaves that region
      untouched the attacker's counts simply shift with the baseline
      counts (``counts_t − baseline_t`` is invariant) and the delta is
      skipped entirely.

    Chains must be nested *per membership mode*: both the ranking set
    (``full``) and the signing set (``full ∪ simplex``) may only grow
    (a simplex→full promotion is allowed).  :meth:`advance` raises
    ``ValueError`` otherwise.  Results are bit-identical to building a
    fresh sweep per step, which is what the differential tests enforce.

    Example:
        Walking a chain reuses the converged arrays between steps and
        matches fresh per-step sweeps exactly:

        >>> from repro.topology.graph import ASGraph
        >>> g = ASGraph()
        >>> for customer, provider in [(2, 1), (3, 1), (4, 2), (5, 3)]:
        ...     g.add_customer_provider(customer, provider)
        >>> chain = [Deployment.empty(), Deployment.of([1, 2]),
        ...          Deployment.of([1, 2, 3, 4])]
        >>> sweep = RolloutSweep(g, destination=4, deployment=chain[0])
        >>> walked = [sweep.happiness_counts(5)]
        >>> for step in chain[1:]:
        ...     sweep.advance(step)
        ...     walked.append(sweep.happiness_counts(5))
        >>> fresh = [DestinationSweep(g, 4, s).happiness_counts(5)
        ...          for s in chain]
        >>> walked == fresh
        True
    """

    __slots__ = ("_memo", "_dep_slack")

    def __init__(
        self,
        topology: ASGraph | RoutingContext,
        destination: int,
        deployment: Deployment | None = None,
        model: RankModel = BASELINE,
        attack: AttackStrategy = DEFAULT_ATTACK,
        delta_kernel: str = "auto",
    ) -> None:
        super().__init__(
            topology, destination, deployment, model, attack, delta_kernel
        )
        # Private mutable masks: the parent's come from the context's
        # per-deployment cache (and may even be its shared zero mask),
        # so advancing in place would poison other computations.
        self._signing = bytearray(self._signing)
        self._ranking = bytearray(self._ranking)
        #: attacker index → (read region, counts delta vs baseline).
        self._memo: dict[int, tuple[frozenset[int], tuple[int, int]]] = {}
        #: dep entries appended since the last exact (re)build; commits
        #: trigger a rebuild once this exceeds n, bounding staleness.
        self._dep_slack = 0

    def advance(self, deployment: Deployment) -> None:
        """Move the sweep's baseline to the next chain step in place."""
        old = self.deployment
        old_signing = old.full | old.simplex
        new_signing = deployment.full | deployment.simplex
        if not (old.full <= deployment.full and old_signing <= new_signing):
            raise ValueError(
                "rollout chains must be nested: both the full set and "
                "the signing set may only grow between steps"
            )
        ranking_gain = deployment.full - old.full
        signing_gain = new_signing - old_signing
        self.deployment = deployment
        if self.destination in signing_gain:
            # The destination's own origin signing flips: the root's
            # announcement changes, so every record is suspect — rebuild
            # from a full fixing pass (rare: once per chain at most).
            self._rebuild()
            return
        get = self.ctx.index_of.get
        dest_i = self._dest_i
        root_att = self._root_att
        # Roots never seed a reset: their records ignore offers and
        # their secure bits are never read (the destination's ranking
        # bit is only consulted for offers *to* it, which roots discard;
        # a rooted attacker announces its resolved claim regardless of
        # its own membership — the paper's attacker ignores protocol).
        seeds = sorted(
            {
                i
                for asn in ranking_gain | signing_gain
                if (i := get(asn)) is not None
                and i != dest_i
                and i != root_att
            }
        )
        self._ensure_scratch()
        signing = self._signing
        ranking = self._ranking
        for asn in signing_gain:
            i = get(asn)
            if i is not None:
                signing[i] = 1
        for asn in ranking_gain:
            i = get(asn)
            if i is not None:
                ranking[i] = 1
                signing[i] = 1
        if not seeds:
            return
        counts, touched = self._delta(
            self._root_att, extra_resets=seeds, need_state=True
        )
        if touched is None:
            # Dense fall-back: the full pass just recomputed the whole
            # advanced state, so adopt it wholesale — fresh snapshot,
            # no valid memo regions, dependency bookkeeping reset.
            self._take_baseline()
            self._memo.clear()
            self._dep_slack = 0
            self.ctx._sweep_owner = weakref.ref(self)
            return
        self._commit(counts, touched, seeds)

    def _rebuild(self) -> None:
        """Full re-fix fallback (destination signing flipped)."""
        ctx = self.ctx
        signing, ranking = ctx.deployment_masks(self.deployment)
        self._signing = bytearray(signing)
        self._ranking = bytearray(ranking)
        self._dest_signed = bool(signing[self._dest_i])
        self._run_baseline()
        self._take_baseline()
        self._memo.clear()
        self._dep_slack = 0
        ctx._sweep_owner = weakref.ref(self)

    def _commit(
        self,
        counts: tuple[int, int, int, int, int, int],
        touched: list[int],
        seeds: Sequence[int],
    ) -> None:
        """Adopt the advance's re-fixed state as the new baseline.

        Every snapshot form the sweep currently holds is updated in
        place: the python baselines (when they exist), the numpy base
        (eager on vectorized contexts, lazy elsewhere) and whichever
        dependency structures have been built — python ``dep`` lists
        get the append-only patch, the numpy dependency CSR is rebuilt
        from the committed pair set.
        """
        ctx = self.ctx
        fixed = ctx._fixed
        key_l = ctx._key
        cls_b = ctx._cls
        len_l = ctx._len
        reach_b = ctx._reach
        wire_b = ctx._wire
        sec_b = ctx._sec
        choice_l = ctx._choice
        endp_b = ctx._endpoint
        nhops = ctx._nhops
        b_fixed = self._b_fixed
        py = b_fixed is not None
        if py:
            b_key = self._b_key
            b_cls = self._b_cls
            b_len = self._b_len
            b_reach = self._b_reach
            b_wire = self._b_wire
            b_sec = self._b_sec
            b_choice = self._b_choice
            b_endp = self._b_endpoint
        base = self._np_base
        b_nhops = self._b_nhops
        dep = self._dep
        dirty = self._dirty
        appended = 0
        for x in touched:
            if py:
                b_fixed[x] = fixed[x]
                b_key[x] = key_l[x]
                b_cls[x] = cls_b[x]
                b_len[x] = len_l[x]
                b_reach[x] = reach_b[x]
                b_wire[x] = wire_b[x]
                b_sec[x] = sec_b[x]
                b_choice[x] = choice_l[x]
                b_endp[x] = endp_b[x]
            if base is not None:
                k = key_l[x]
                base["key"][x] = k if k < _NP_INF else _NP_INF
                base["fixed"][x] = bool(fixed[x])
                base["cls"][x] = cls_b[x]
                base["len"][x] = len_l[x]
                base["reach"][x] = reach_b[x]
                base["wire"][x] = wire_b[x]
                base["sec"][x] = sec_b[x]
                base["choice"][x] = choice_l[x]
                base["endp"][x] = endp_b[x]
            old = b_nhops[x]
            h = nhops[x]
            b_nhops[x] = h
            dirty[x] = 0
            if dep is not None and h is not None and fixed[x]:
                # Append-only dependency patch: entries for dropped
                # memberships go stale, and re-appearing memberships
                # duplicate — both at worst re-reset a node whose record
                # would have survived, never incorrect.  Only genuinely
                # new-vs-the-replaced-record memberships are appended,
                # and the periodic rebuild below bounds the accumulated
                # slack on long chains.
                for u in h:
                    if old is None or u not in old:
                        dep[u].append(x)
                        appended += 1
        self._b_counts = counts
        if base is not None:
            # The numpy dependency CSR has no harmless-staleness story
            # (the closure counts dead BPR members against exact set
            # sizes), so rebuild it from the committed pair set.
            np = _np
            drop = np.zeros(ctx.n, dtype=np.bool_)
            drop[touched] = True
            keep = ~drop[base["vs"]]
            new_us: list[int] = []
            new_vs: list[int] = []
            for x in touched:
                h = b_nhops[x]
                if h:
                    new_us.extend(h)
                    new_vs.extend([x] * len(h))
            self._np_attach_dep(
                base,
                np.concatenate(
                    [base["us"][keep], np.array(new_us, dtype=np.int64)]
                ),
                np.concatenate(
                    [base["vs"][keep], np.array(new_vs, dtype=np.int64)]
                ),
            )
        if dep is not None:
            self._dep_slack += appended
            if self._dep_slack > ctx.n:
                # Stale and duplicated entries only cost harmless extra
                # resets, but on a long chain they would accumulate; one
                # linear rebuild per ~n appended entries keeps every dep
                # list exact at amortized O(1) per commit.
                fresh: list[list[int]] = [[] for _ in range(ctx.n)]
                for v, h in enumerate(b_nhops):
                    if h:
                        for u in h:
                            fresh[u].append(v)
                self._dep = fresh
                self._dep_slack = 0
        if self._memo:
            changed = set(touched)
            changed.update(seeds)
            self._memo = {
                a: entry
                for a, entry in self._memo.items()
                if entry[0].isdisjoint(changed)
            }

    def happiness_counts(self, attacker: int) -> tuple[int, int, int]:
        """``(happy_lower, happy_upper, num_sources)``, memoized across
        chain steps when the attacker's read region survived the last
        advance untouched."""
        att_i = self._attacker_index(attacker)
        b = self._b_counts
        entry = self._memo.get(att_i)
        if entry is not None:
            d_lo, d_up = entry[1]
            return b[0] + d_lo, b[1] + d_up, self.ctx.n - 2
        counts, touched = self._delta(att_i)
        # The delta read baseline records only at touched nodes and
        # their neighbors (gather sources and boundary targets), so that
        # region is the memo's validity certificate.  Tracking it only
        # pays when the region is small — which is also exactly when the
        # next advance is likely to miss it.  A dense fall-back
        # (``touched is None``) read everything: nothing to memoize.
        if touched is not None and len(touched) <= self.ctx.n >> 3:
            region = set(touched)
            if _np is not None:
                np = _np
                start, node, _cls, _cf, _es = self.ctx._np_adjacency()
                t = np.asarray(touched, dtype=np.int64)
                s = start[t]
                cnt = start[t + 1] - s
                tot = int(cnt.sum())
                if tot:
                    cend = np.cumsum(cnt)
                    eidx = np.repeat(s - (cend - cnt), cnt) + np.arange(tot)
                    region.update(np.unique(node[eidx]).tolist())
            else:
                edges = self.ctx._edges
                for x in touched:
                    for e in edges[x]:
                        region.add(e >> 3)
            self._memo[att_i] = (
                frozenset(region),
                (counts[0] - b[0], counts[1] - b[1]),
            )
        self._restore(touched)
        return counts[0], counts[1], self.ctx.n - 2


class _AttackerChain(RolloutSweep):
    """A rollout chain whose baseline *is* one attacker's stable state.

    When a destination group has only a few attackers, re-running each
    attacker's delta at every chain step costs a blast-radius-sized
    re-fix per (attacker, step) — at low deployment levels that is as
    expensive as a full fixing pass, so the shared-baseline walk saves
    nothing.  This walker instead roots the attacker *into* the chain
    baseline: one full attacked pass at ``S_0``, then each step is a
    single ``O(changed)`` advance of the attacked state, and the step's
    counts are simply the committed baseline counts.

    Only valid for strategies whose resolution is step-stable: a
    ``needs_baseline`` strategy (e.g. ``honest``) re-resolves against
    the attacker-free state of *each* deployment, which this walker does
    not maintain.  The destination's own signing flip re-resolves and
    rebuilds (via :meth:`RolloutSweep._rebuild` → :meth:`_run_baseline`).
    """

    __slots__ = ()

    def __init__(
        self,
        topology: ASGraph | RoutingContext,
        destination: int,
        attacker: int,
        deployment: Deployment | None = None,
        model: RankModel = BASELINE,
        attack: AttackStrategy = DEFAULT_ATTACK,
        delta_kernel: str = "auto",
    ) -> None:
        if attack.needs_baseline:
            raise ValueError(
                f"attacker-chain walking needs a step-stable resolution; "
                f"strategy {attack.token!r} resolves against the "
                f"attacker-free baseline of every step"
            )
        ctx = _as_context(topology)
        _, att_i = ctx._check_pair(destination, attacker)
        self._root_att = att_i
        super().__init__(
            ctx, destination, deployment, model, attack, delta_kernel
        )

    def _run_baseline(self) -> None:
        ctx = self.ctx
        att_i = self._root_att
        res = ctx._resolve_attack(
            self._dest_i, att_i, self._signing, self._ranking,
            self.model, self.attack,
        )
        self._last_res = res
        ctx._run(
            self._dest_i, att_i, self._signing, self._ranking,
            self.model, res,
        )

    def step_counts(self) -> tuple[int, int, int]:
        """``(happy_lower, happy_upper, num_sources)`` at the current
        chain step — just the committed baseline counts."""
        b = self._b_counts
        return b[0], b[1], self.ctx.n - 2


#: Destination groups with at most this many attackers walk per-attacker
#: :class:`_AttackerChain`\ s instead of the shared-baseline delta walk:
#: below it, one full attacked pass plus cheap advances beats paying the
#: attack's blast radius again at every step.
_ATTACKER_CHAIN_MAX = 3


def rollout_happiness_counts(
    topology: ASGraph | RoutingContext,
    pairs: Sequence[tuple[int | None, int]],
    deployments: Sequence[Deployment],
    model: RankModel = BASELINE,
    *,
    attack: AttackStrategy = DEFAULT_ATTACK,
) -> list[list[tuple[int, int, int]]]:
    """``(happy_lower, happy_upper, num_sources)`` per pair, per chain
    step: ``result[t][i]`` is pair ``i`` evaluated under
    ``deployments[t]``.

    The rollout-major fast path behind the scenario scheduler's chain
    evaluation.  Pairs are grouped by destination and each destination
    walks the whole chain with warm state — ``deployments`` must be
    nested (``S_t ⊑ S_{t+1}`` per membership mode).  Two walkers cover
    the workload's two shapes:

    * **few attackers** (the paper's rollout sampling: ``≤ 3`` per
      destination, step-stable strategy): one :class:`_AttackerChain`
      per attacker — a full attacked pass at ``S_0``, then a single
      ``O(changed)`` advance per step;
    * **many attackers**: one shared :class:`RolloutSweep` — the
      attacker-free baseline advances per step, each attacker pays an
      ``O(dirty)`` delta per step, and cross-step memo hits skip
      attackers whose read region the advance missed.

    Results per step are in input pair order and bit-identical to
    evaluating each step independently via
    :func:`batch_happiness_counts`.
    """
    ctx = _as_context(topology)
    deployments = list(deployments)
    pairs = list(pairs)
    n = ctx.n
    out: list[list[tuple[int, int, int] | None]] = [
        [None] * len(pairs) for _ in deployments
    ]
    groups: dict[int, list[int]] = {}
    for i, (_m, d) in enumerate(pairs):
        groups.setdefault(d, []).append(i)
    for d, idxs in groups.items():
        attackers = list(
            dict.fromkeys(
                pairs[i][0] for i in idxs if pairs[i][0] is not None
            )
        )
        if 0 < len(attackers) <= _ATTACKER_CHAIN_MAX and not attack.needs_baseline:
            chains: dict[int, _AttackerChain] = {
                m: _AttackerChain(
                    ctx, d, m, deployments[0], model, attack=attack
                )
                for m in attackers
            }
            base = (
                RolloutSweep(ctx, d, deployments[0], model, attack=attack)
                if any(pairs[i][0] is None for i in idxs)
                else None
            )
            for t, deployment in enumerate(deployments):
                if t:
                    for chain in chains.values():
                        chain.advance(deployment)
                    if base is not None:
                        base.advance(deployment)
                row = out[t]
                for i in idxs:
                    m = pairs[i][0]
                    if m is None:
                        lo, up = base.baseline_counts()  # type: ignore[union-attr]
                        row[i] = (lo, up, n - 1)
                    else:
                        row[i] = chains[m].step_counts()
            continue
        sweep = RolloutSweep(ctx, d, deployments[0], model, attack=attack)
        for t, deployment in enumerate(deployments):
            if t:
                sweep.advance(deployment)
            row = out[t]
            for i in idxs:
                m = pairs[i][0]
                if m is None:
                    lo, up = sweep.baseline_counts()
                    row[i] = (lo, up, n - 1)
                else:
                    row[i] = sweep.happiness_counts(m)
    return out  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Batched evaluation
# ----------------------------------------------------------------------
def batch_outcomes(
    topology: ASGraph | RoutingContext,
    pairs: Sequence[tuple[int | None, int]],
    deployment: Deployment | None = None,
    model: RankModel = BASELINE,
    attack: AttackStrategy = DEFAULT_ATTACK,
) -> list[RoutingOutcome]:
    """Stable states for many ``(attacker, destination)`` pairs at once.

    Deployment masks are built once and the context's scratch buffers
    are reused across the whole sweep, which is the engine's intended
    hot path.  ``attacker`` may be None in a pair (normal conditions).
    Pair ordering matches the metric convention ``(m, d)``.
    """
    ctx = _as_context(topology)
    deployment = deployment or _EMPTY_DEPLOYMENT
    signing, ranking = ctx.deployment_masks(deployment)
    out: list[RoutingOutcome] = []
    for attacker, destination in pairs:
        dest_i, att_i = ctx._check_pair(destination, attacker)
        resolved = ctx._resolve_attack(
            dest_i, att_i, signing, ranking, model, attack
        )
        ctx._run(dest_i, att_i, signing, ranking, model, resolved)
        out.append(
            ctx._snapshot(
                destination, attacker, deployment, model, dest_i, att_i,
                attack, resolved,
            )
        )
    return out


def batch_happiness_counts(
    topology: ASGraph | RoutingContext,
    pairs: Sequence[tuple[int | None, int]],
    deployment: Deployment | None = None,
    model: RankModel = BASELINE,
    *,
    destination_major: bool = True,
    attack: AttackStrategy = DEFAULT_ATTACK,
) -> list[tuple[int, int, int]]:
    """``(happy_lower, happy_upper, num_sources)`` per ``(m, d)`` pair.

    The count-only fast path behind :func:`repro.core.metrics.security_metric`:
    no :class:`RoutingOutcome` is materialized and nothing is copied out
    of the scratch buffers.  With ``destination_major`` (the default)
    pairs are grouped by destination and each group is evaluated through
    a :class:`DestinationSweep` — one attacker-free fixing pass per
    destination plus an ``O(dirty)`` delta per attacker; results are
    returned in the input pair order either way, so the two paths are
    interchangeable bit-for-bit.  ``destination_major=False`` forces the
    PR 1 per-pair path (one full fixing pass per pair), kept for
    differential testing and benchmarking.
    """
    ctx = _as_context(topology)
    deployment = deployment or _EMPTY_DEPLOYMENT
    signing, ranking = ctx.deployment_masks(deployment)
    n = ctx.n
    pairs = list(pairs)
    if not destination_major:
        out: list[tuple[int, int, int]] = []
        for attacker, destination in pairs:
            dest_i, att_i = ctx._check_pair(destination, attacker)
            resolved = ctx._resolve_attack(
                dest_i, att_i, signing, ranking, model, attack
            )
            ctx._run(dest_i, att_i, signing, ranking, model, resolved)
            counts = ctx._last_counts
            out.append(
                (counts[0], counts[1], n - (2 if attacker is not None else 1))
            )
        return out
    slots: list[tuple[int, int, int] | None] = [None] * len(pairs)
    groups: dict[int, list[int]] = {}
    for i, (_m, d) in enumerate(pairs):
        groups.setdefault(d, []).append(i)
    for d, idxs in groups.items():
        attackers = [pairs[i][0] for i in idxs]
        real = sum(1 for m in attackers if m is not None)
        if real <= 1:
            # Zero or one actual attacker: plain fixing passes beat a
            # sweep's snapshot + dependency-CSR construction.
            for i, m in zip(idxs, attackers):
                dest_i, att_i = ctx._check_pair(d, m)
                resolved = ctx._resolve_attack(
                    dest_i, att_i, signing, ranking, model, attack
                )
                ctx._run(dest_i, att_i, signing, ranking, model, resolved)
                counts = ctx._last_counts
                slots[i] = (
                    counts[0], counts[1], n - (2 if m is not None else 1)
                )
            continue
        sweep = DestinationSweep(ctx, d, deployment, model, attack=attack)
        for i in idxs:
            m = pairs[i][0]
            if m is None:
                lo, up = sweep.baseline_counts()
                slots[i] = (lo, up, n - 1)
            else:
                slots[i] = sweep.happiness_counts(m)
    return slots  # type: ignore[return-value]
