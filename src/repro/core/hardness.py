"""Max-k-Security: NP-hardness gadget and solvers (§5.1, Appendix I).

``Max-k-Security``: given a graph, an attack pair ``(m, d)`` and ``k``,
choose a secure set ``S`` of size ``k`` maximizing the number of happy
ASes.  Theorem 5.1 proves this NP-hard in all three security models by
reduction from Set Cover (Figure 18); this module makes the reduction
executable, and provides an exact brute-force solver for small instances
plus a greedy heuristic for picking early adopters on real graphs.

Happiness here is the metric's lower bound (tiebreak-adversarial),
matching the reduction's requirement that the element ASes' tiebreak
"prefers the route through m".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..topology.graph import ASGraph, graph_from_edges
from .deployment import Deployment
from .rank import RankModel
from .routing import RoutingContext, compute_routing_outcome


@dataclass(frozen=True)
class ReductionInstance:
    """The Figure 18 gadget for a Set Cover instance.

    Securing ``{d} ∪ elements ∪ (a γ-subfamily covering all elements)``
    — i.e. ``k = n + γ + 1`` ASes — makes every source happy iff the
    subfamily is a set cover (Theorem I.1).
    """

    graph: ASGraph
    attacker: int
    destination: int
    element_as: dict[str, int]
    set_as: dict[str, int]
    universe: tuple[str, ...]
    family: dict[str, frozenset[str]]

    @property
    def num_sources(self) -> int:
        return len(self.element_as) + len(self.set_as)

    def deployment_for_cover(self, cover: Sequence[str]) -> Deployment:
        """The secure set induced by a candidate subfamily."""
        members = {self.destination}
        members.update(self.element_as.values())
        members.update(self.set_as[name] for name in cover)
        return Deployment.of(members)

    def k_for_gamma(self, gamma: int) -> int:
        """Secure-set size corresponding to a γ-subfamily."""
        return len(self.element_as) + gamma + 1


def build_set_cover_reduction(
    universe: Sequence[str],
    family: dict[str, Sequence[str]],
    attacker_asn: int = 1,
    destination_asn: int = 2,
) -> ReductionInstance:
    """Build the Figure 18 gadget from a Set Cover instance.

    * each element AS is a provider of the attacker (so it perceives a
      2-hop bogus customer route ``(m, d)``);
    * each set AS is a provider of the destination (1-hop customer route);
    * element ``e`` is a provider of set ``s`` iff ``e ∈ s`` (giving
      ``e`` a 2-hop legitimate customer route ``(s, d)``).

    The attacker gets the smallest ASN so that the deterministic
    lowest-next-hop tiebreak "prefers the route through m", as the
    reduction requires.
    """
    if attacker_asn >= destination_asn:
        raise ValueError("attacker ASN must be smallest (tiebreak prefers m)")
    universe = tuple(universe)
    family_sets = {name: frozenset(members) for name, members in family.items()}
    for name, members in family_sets.items():
        unknown = members - set(universe)
        if unknown:
            raise ValueError(f"set {name!r} contains unknown elements {sorted(unknown)}")

    set_as = {
        name: destination_asn + 1 + i for i, name in enumerate(sorted(family_sets))
    }
    base = destination_asn + 1 + len(set_as) + 100
    element_as = {name: base + i for i, name in enumerate(universe)}

    c2p: list[tuple[int, int]] = []
    for element, asn in element_as.items():
        c2p.append((attacker_asn, asn))  # attacker is a customer of e
    for name, asn in set_as.items():
        c2p.append((destination_asn, asn))  # destination is a customer of s
        for element in family_sets[name]:
            c2p.append((asn, element_as[element]))  # s is a customer of e
    graph = graph_from_edges(customer_provider=c2p)
    return ReductionInstance(
        graph=graph,
        attacker=attacker_asn,
        destination=destination_asn,
        element_as=element_as,
        set_as=set_as,
        universe=universe,
        family=family_sets,
    )


def count_happy_lower(
    topology: ASGraph | RoutingContext,
    attacker: int,
    destination: int,
    deployment: Deployment,
    model: RankModel,
) -> int:
    """Lower-bound happy-source count for one attack (the DkℓSP objective)."""
    outcome = compute_routing_outcome(
        topology, destination, attacker=attacker, deployment=deployment, model=model
    )
    lower, _ = outcome.count_happy()
    return lower


def max_k_security_bruteforce(
    topology: ASGraph | RoutingContext,
    attacker: int,
    destination: int,
    k: int,
    model: RankModel,
    candidates: Sequence[int] | None = None,
) -> tuple[int, frozenset[int]]:
    """Exact Max-k-Security by exhaustive search (exponential — tiny inputs).

    Args:
        candidates: the pool to draw ``S`` from; defaults to all ASes.

    Returns:
        ``(best happy count, best secure set)``.
    """
    ctx = topology if isinstance(topology, RoutingContext) else RoutingContext(topology)
    pool = list(candidates) if candidates is not None else list(ctx.asns)
    if len(pool) > 25:
        raise ValueError(
            f"brute force over {len(pool)} candidates is infeasible; "
            "restrict the candidate pool"
        )
    best_count = -1
    best_set: frozenset[int] = frozenset()
    for combo in itertools.combinations(sorted(pool), min(k, len(pool))):
        deployment = Deployment.of(combo)
        happy = count_happy_lower(ctx, attacker, destination, deployment, model)
        if happy > best_count:
            best_count = happy
            best_set = frozenset(combo)
    return best_count, best_set


def greedy_max_k_security(
    topology: ASGraph | RoutingContext,
    attacker: int,
    destination: int,
    k: int,
    model: RankModel,
    candidates: Sequence[int] | None = None,
) -> tuple[int, frozenset[int]]:
    """Greedy heuristic: repeatedly secure the AS with the best marginal gain.

    NP-hardness (Theorem 5.1) justifies a heuristic; this is the natural
    greedy early-adopter picker referenced in DESIGN.md's ablations.
    Ties are broken toward the smallest ASN for determinism.
    """
    ctx = topology if isinstance(topology, RoutingContext) else RoutingContext(topology)
    pool = sorted(candidates) if candidates is not None else list(ctx.asns)
    chosen: set[int] = set()
    current = count_happy_lower(
        ctx, attacker, destination, Deployment.empty(), model
    )
    for _ in range(min(k, len(pool))):
        best_gain = -1
        best_asn: int | None = None
        for asn in pool:
            if asn in chosen:
                continue
            happy = count_happy_lower(
                ctx, attacker, destination, Deployment.of(chosen | {asn}), model
            )
            gain = happy - current
            if gain > best_gain:
                best_gain = gain
                best_asn = asn
        if best_asn is None:
            break
        chosen.add(best_asn)
        current += best_gain
    return current, frozenset(chosen)
