"""Deployment scenarios: who runs S*BGP, and in which mode (Section 5).

A :class:`Deployment` is the set ``S`` of the paper: the ASes that have
adopted S*BGP.  Two membership modes exist (Section 5.3.2):

* **full** — the AS signs, validates, and uses security in route
  selection (the ``SecP`` step);
* **simplex** — lightweight S*BGP for stubs: the AS *signs its own
  origin announcements* (so routes *to* it can be secure) but receives
  legacy BGP only, so it never prefers secure routes itself.

The module also builds every partial-deployment scenario the paper
evaluates: the Tier 1+2 rollout, the Tier 1+2+CP rollout, the Tier 2-only
rollout, "all non-stubs", and the Section 5.3.1 early-adopter scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..topology.graph import ASGraph
from ..topology.tiers import Tier, TierTable


@dataclass(frozen=True)
class Deployment:
    """The set of secure ASes, split by deployment mode.

    Attributes:
        full: ASes running full S*BGP (sign + validate + rank securely).
        simplex: stub ASes running simplex S*BGP (sign own origin only).
    """

    full: frozenset[int] = frozenset()
    simplex: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        overlap = self.full & self.simplex
        if overlap:
            raise ValueError(f"ASes in both full and simplex mode: {sorted(overlap)}")

    # -- membership views ------------------------------------------------
    @property
    def ranking_members(self) -> frozenset[int]:
        """ASes that apply the ``SecP`` step when selecting routes."""
        return self.full

    @property
    def signing_members(self) -> frozenset[int]:
        """ASes whose announcements can carry S*BGP signatures."""
        return self.full | self.simplex

    def is_secure_destination(self, asn: int) -> bool:
        """Can routes *to* this AS be secure (is its origin signed)?"""
        return asn in self.full or asn in self.simplex

    @property
    def size(self) -> int:
        return len(self.full) + len(self.simplex)

    def __contains__(self, asn: int) -> bool:
        return asn in self.full or asn in self.simplex

    # -- constructors ------------------------------------------------------
    @classmethod
    def empty(cls) -> "Deployment":
        """The baseline scenario ``S = ∅`` (origin authentication only)."""
        return cls()

    @classmethod
    def of(cls, asns: Iterable[int]) -> "Deployment":
        """Full S*BGP at exactly ``asns``."""
        return cls(full=frozenset(asns))

    @classmethod
    def everywhere(cls, graph: ASGraph) -> "Deployment":
        """Full deployment at every AS (the prior literature's endgame)."""
        return cls(full=frozenset(graph.asns))

    def with_simplex_stubs(self, graph: ASGraph) -> "Deployment":
        """Demote every stub in the deployment to simplex mode (§5.3.2)."""
        stubs = frozenset(a for a in self.full if graph.is_stub(a))
        return Deployment(full=self.full - stubs, simplex=self.simplex | stubs)

    def union(self, other: "Deployment") -> "Deployment":
        return Deployment(
            full=self.full | other.full,
            simplex=(self.simplex | other.simplex) - (self.full | other.full),
        )


@dataclass(frozen=True)
class RolloutStep:
    """One step of an incremental deployment, with a display label."""

    label: str
    deployment: Deployment
    #: number of non-stub ASes in S — the x-axis of Figures 7, 8 and 11.
    non_stub_count: int


def stubs_of(graph: ASGraph, isps: Iterable[int]) -> frozenset[int]:
    """The stub customers of the given ISPs.

    Gill et al.'s bootstrap strategy (§5.2.1) has secure ISPs deploy
    S*BGP at their stub customers, so each rollout step secures a set of
    ISPs "and all of their stubs": every direct customer with no
    customers of its own.
    """
    out: set[int] = set()
    for isp in isps:
        for customer in graph.customers(isp):
            if graph.is_stub(customer):
                out.add(customer)
    return frozenset(out)


def _isp_step(
    graph: ASGraph,
    label: str,
    isps: Sequence[int],
    extra: Iterable[int] = (),
    simplex_stubs: bool = False,
) -> RolloutStep:
    """Build 'these ISPs + their stubs (+ extras)' as a rollout step."""
    isp_set = frozenset(isps) | frozenset(extra)
    members = isp_set | stubs_of(graph, isp_set)
    deployment = Deployment.of(members)
    if simplex_stubs:
        deployment = deployment.with_simplex_stubs(graph)
    non_stub = sum(1 for a in members if not graph.is_stub(a))
    return RolloutStep(label=label, deployment=deployment, non_stub_count=non_stub)


def _scaled_counts(total: int, paper_counts: Sequence[int], paper_total: int) -> list[int]:
    """Scale the paper's rollout sizes to a smaller tier population."""
    if total >= paper_total:
        return [min(c, total) for c in paper_counts]
    counts = sorted({max(1, round(c * total / paper_total)) for c in paper_counts})
    if counts[-1] != total:
        counts.append(total)
    return counts


def tier12_rollout(
    graph: ASGraph,
    tiers: TierTable,
    simplex_stubs: bool = False,
    include_cps: bool = False,
) -> list[RolloutStep]:
    """The Tier 1 + Tier 2 rollout of §5.2.1 (Figures 7 and 8).

    The paper secures X Tier 1s and Y Tier 2s plus all their stubs, for
    (X, Y) ∈ {(13,13), (13,37), (13,100)}.  Y is scaled proportionally
    when the graph's Tier-2 bucket is smaller than 100.

    Args:
        graph: the topology.
        tiers: its Table 1 classification.
        simplex_stubs: run stubs in simplex mode (the "error bars").
        include_cps: also secure the content providers (Figure 8).
    """
    t1 = tiers.members(Tier.TIER1)
    t2 = tiers.members(Tier.TIER2)
    t2_ranked = sorted(t2, key=lambda a: (-graph.customer_degree(a), a))
    extra = tiers.members(Tier.CP) if include_cps else ()
    steps = []
    for y in _scaled_counts(len(t2_ranked), (13, 37, 100), 100):
        label = f"T1+{y}xT2" + ("+CP" if include_cps else "")
        steps.append(
            _isp_step(
                graph,
                label,
                list(t1) + t2_ranked[:y],
                extra=extra,
                simplex_stubs=simplex_stubs,
            )
        )
    return steps


def tier12_rollout_dense(
    graph: ASGraph,
    tiers: TierTable,
    simplex_stubs: bool = False,
    include_cps: bool = False,
) -> list[RolloutStep]:
    """The §5.2.1 rollout refined to one-ISP granularity.

    Step 0 secures the Tier 1 block (plus stubs); each further step adds
    exactly one Tier 2 (plus its stubs) in customer-degree order — the
    deployment-*ordering* workload that follow-up studies (e.g. Barrett
    et al., "Ain't How You Deploy", 2024) sweep at far larger scenario
    counts than the paper's three Figure 7 points.  The coarse
    :func:`tier12_rollout` steps appear verbatim in this chain (same
    member sets at the matching Y counts), so the two experiments'
    scenarios dedupe; adjacent steps differ by one ISP and its stubs,
    which is exactly the shape the rollout-major engine
    (:class:`repro.core.routing.RolloutSweep`) amortizes best.
    """
    t1 = tiers.members(Tier.TIER1)
    t2 = tiers.members(Tier.TIER2)
    t2_ranked = sorted(t2, key=lambda a: (-graph.customer_degree(a), a))
    extra = tiers.members(Tier.CP) if include_cps else ()
    suffix = "+CP" if include_cps else ""
    return [
        _isp_step(
            graph,
            f"T1+{y}xT2{suffix}",
            list(t1) + t2_ranked[:y],
            extra=extra,
            simplex_stubs=simplex_stubs,
        )
        for y in range(len(t2_ranked) + 1)
    ]


def tier2_rollout(
    graph: ASGraph,
    tiers: TierTable,
    simplex_stubs: bool = False,
) -> list[RolloutStep]:
    """The Tier 2-only rollout of §5.2.4 (Figure 11).

    Secures Y Tier 2s plus their stubs for Y ∈ {13, 26, 50, 100}
    (scaled), with no Tier 1 participation.
    """
    t2 = tiers.members(Tier.TIER2)
    t2_ranked = sorted(t2, key=lambda a: (-graph.customer_degree(a), a))
    steps = []
    for y in _scaled_counts(len(t2_ranked), (13, 26, 50, 100), 100):
        steps.append(
            _isp_step(graph, f"{y}xT2", t2_ranked[:y], simplex_stubs=simplex_stubs)
        )
    return steps


def nonstub_deployment(graph: ASGraph, tiers: TierTable) -> Deployment:
    """Secure every non-stub AS (§5.2.4, Figure 12)."""
    return Deployment.of(tiers.non_stubs())


def tier1_and_stubs(
    graph: ASGraph, tiers: TierTable, include_cps: bool = False
) -> RolloutStep:
    """§5.3.1: all Tier 1s and their stubs (optionally + the CPs)."""
    label = "T1+stubs" + ("+CP" if include_cps else "")
    extra = tiers.members(Tier.CP) if include_cps else ()
    return _isp_step(graph, label, tiers.members(Tier.TIER1), extra=extra)


def top_tier2_and_stubs(
    graph: ASGraph, tiers: TierTable, count: int = 13
) -> RolloutStep:
    """§5.3.1: the ``count`` largest Tier 2s (by customer degree) + stubs."""
    t2_ranked = sorted(
        tiers.members(Tier.TIER2), key=lambda a: (-graph.customer_degree(a), a)
    )
    return _isp_step(graph, f"top{count}xT2+stubs", t2_ranked[:count])


@dataclass(frozen=True)
class ScenarioCatalog:
    """All named deployment scenarios for a given graph, lazily built."""

    graph: ASGraph
    tiers: TierTable
    _cache: dict = field(default_factory=dict, compare=False)

    def get(self, name: str) -> Deployment:
        """Look up a scenario by name.

        Names: ``empty``, ``t1_stubs``, ``t1_stubs_cp``, ``t2_top13_stubs``,
        ``nonstubs``, ``t12_full`` (last Tier 1+2 rollout step),
        ``t2_full`` (last Tier 2 rollout step), ``everywhere``.
        """
        if name in self._cache:
            return self._cache[name]
        if name == "empty":
            value = Deployment.empty()
        elif name == "t1_stubs":
            value = tier1_and_stubs(self.graph, self.tiers).deployment
        elif name == "t1_stubs_cp":
            value = tier1_and_stubs(self.graph, self.tiers, include_cps=True).deployment
        elif name == "t2_top13_stubs":
            value = top_tier2_and_stubs(self.graph, self.tiers).deployment
        elif name == "nonstubs":
            value = nonstub_deployment(self.graph, self.tiers)
        elif name == "t12_full":
            value = tier12_rollout(self.graph, self.tiers)[-1].deployment
        elif name == "t2_full":
            value = tier2_rollout(self.graph, self.tiers)[-1].deployment
        elif name == "everywhere":
            value = Deployment.everywhere(self.graph)
        else:
            raise KeyError(f"unknown deployment scenario {name!r}")
        self._cache[name] = value
        return value
