"""Zero-copy shared-memory arenas for frozen routing-context buffers.

Fork workers already inherit the parent's :class:`~repro.core.routing.
RoutingContext` via copy-on-write pages, but CPython's reference
counting *writes* to every object header it touches, so the "shared"
adjacency lists are gradually duplicated into every worker's resident
set.  At the ``large`` scale (~80k ASes, ~10^6 directed edges) that
churn costs hundreds of MB per worker.  A :class:`SharedArena` instead
packs the frozen buffers — the CSR adjacency and the packed rank-key
coefficient table — into one ``multiprocessing.shared_memory`` segment
exposed as numpy views.  Numpy array *data* carries no refcounts, so
forked workers read the single physical mapping forever; only the tiny
ndarray wrapper objects are per-process.

Lifecycle
---------
Segments live in ``/dev/shm`` and outlive their creator unless
unlinked, so crashed runs can leak them.  Three layers prevent that:

* :meth:`SharedArena.close` unlinks the segment by name (idempotent,
  creator-only).  Crucially it does **not** unmap it: POSIX keeps an
  unlinked mapping valid until the last process exits, so views handed
  out earlier keep working while the name is already gone from
  ``/dev/shm`` — there is no use-after-close hazard.
* every arena is tracked in a module registry flushed by an ``atexit``
  hook (:func:`close_all`), so normal interpreter shutdown — including
  a ``SystemExit`` raised by the CLI's SIGTERM handler — unlinks every
  live segment even when nobody called ``close()``.
* Python's own ``resource_tracker`` remains as the backstop for hard
  kills of the whole process tree.
* :func:`reclaim_orphans` closes the last gap — a SIGKILL'd run whose
  resource tracker died with it: segment names embed the creator's pid,
  so the next run detects segments whose creator no longer exists and
  unlinks them at startup instead of letting ``/dev/shm`` fill up.

The module degrades gracefully: without numpy (or on platforms without
``multiprocessing.shared_memory``) :data:`HAVE_SHARED_MEMORY` is False
and callers fall back to plain in-process buffers.
"""

from __future__ import annotations

import atexit
import os
import secrets

try:  # pragma: no cover - exercised implicitly on import
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

try:  # pragma: no cover - exercised implicitly on import
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - platform without shm support
    _shm = None

#: True when shared-memory arenas can be created on this interpreter.
HAVE_SHARED_MEMORY = _np is not None and _shm is not None

#: name → live :class:`SharedArena` created by this process (strong
#: references: an arena must stay unlink-able until process exit even
#: if the owning context was dropped without ``close()``).
_LIVE: dict[str, "SharedArena"] = {}

#: sharing key → live :class:`SharedArena`, for arenas created through
#: :func:`arena_for`.  A service keeping several resident routing
#: contexts for the *same* frozen topology (same scale, seed, IXP
#: augmentation) maps them all onto one physical segment instead of one
#: per context; the arena refcounts its holders and unlinks when the
#: last one closes.
_BY_KEY: dict[object, "SharedArena"] = {}


def active_segments() -> tuple[str, ...]:
    """Names of the segments this process created and not yet unlinked."""
    return tuple(name for name, arena in _LIVE.items() if not arena.closed)


def close_all() -> None:
    """Unlink every live arena created by this process (atexit hook).

    Force-closes regardless of outstanding refcounts: at interpreter
    exit nothing will release shared holders, and an un-unlinked
    segment would outlive the process in ``/dev/shm``.
    """
    for arena in list(_LIVE.values()):
        arena.close(force=True)


def arena_for(
    key: object, arrays_factory, prefix: str = "repro"
) -> "SharedArena":
    """Fetch-or-create the shared arena for a content key.

    ``key`` must uniquely determine the frozen array contents (e.g.
    ``(scale, n, seed, ixp)`` for routing-context buffers — the
    topology is deterministic in those inputs, so equal keys mean
    bit-equal buffers).  A live arena for the key is *retained* (its
    refcount grows; every holder must eventually :meth:`SharedArena.
    close`) and returned without building the arrays at all; otherwise
    ``arrays_factory()`` is called and a fresh keyed arena created.
    Only arenas created by this process are shared — a fork child asking
    for the same key builds its own (children inherit the parent's
    mapping anyway and never create arenas in practice).
    """
    arena = _BY_KEY.get(key)
    if (
        arena is not None
        and not arena.closed
        and arena.creator_pid == os.getpid()
    ):
        arena.retain()
        return arena
    return SharedArena(arrays_factory(), prefix=prefix, key=key)


def arena_stats() -> dict:
    """Live-arena accounting for service ``/v1/stats``: segment count,
    total bytes, and how many extra holders keyed sharing absorbed."""
    live = [arena for arena in _LIVE.values() if not arena.closed]
    return {
        "segments": len(live),
        "bytes": sum(arena.size for arena in live),
        "shared_holders": sum(max(0, arena.refs - 1) for arena in live),
    }


atexit.register(close_all)

#: Where POSIX shared-memory segments appear as files (Linux).  On
#: platforms without it, orphan reclaim degrades to a no-op — there is
#: no portable way to enumerate segments.
_SHM_DIR = "/dev/shm"


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    return True


def reclaim_orphans(prefix: str = "repro") -> tuple[str, ...]:
    """Unlink arena segments leaked by dead processes; return their names.

    Arena names embed the creator's pid (``{prefix}-{pid}-{token}``), so
    a segment whose creator no longer exists is an orphan by
    construction: its creator was SIGKILL'd (or OOM-killed) before any
    of the cleanup layers could run, taking the resource tracker down
    with it.  Called at context startup (:func:`repro.experiments.
    runner.make_context`) so one crashed run can never leak ``/dev/shm``
    into the next; segments belonging to live processes — including this
    one — are never touched.
    """
    if not HAVE_SHARED_MEMORY or not os.path.isdir(_SHM_DIR):
        return ()
    reclaimed: list[str] = []
    for entry in sorted(os.listdir(_SHM_DIR)):
        if not entry.startswith(prefix + "-"):
            continue
        parts = entry.split("-")
        if len(parts) != 3:
            continue
        try:
            pid = int(parts[1])
        except ValueError:
            continue
        if entry in _LIVE or _pid_alive(pid):
            continue
        try:
            segment = _shm.SharedMemory(name=entry)
        except FileNotFoundError:  # pragma: no cover - raced another run
            continue
        try:
            # unlink() also unregisters the name from the resource
            # tracker this attach just registered it with.
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - raced another run
            pass
        segment.close()
        reclaimed.append(entry)
    return tuple(reclaimed)


def _align(offset: int, alignment: int = 8) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


class SharedArena:
    """One shared-memory segment holding named frozen numpy arrays.

    Arrays are copied in at construction and exposed as read-write
    views via :meth:`array` (callers treat them as frozen; the engine
    never mutates adjacency after construction).  The arena is created
    by exactly one process; fork children inherit the mapping and the
    views zero-copy.

    Example:
        >>> import numpy as np
        >>> arena = SharedArena({"xs": np.arange(4, dtype=np.int64)})
        >>> arena.array("xs").tolist()
        [0, 1, 2, 3]
        >>> arena.closed
        False
        >>> arena.close()   # idempotent; unlinks /dev/shm entry
        >>> arena.closed
        True
        >>> arena.array("xs").tolist()   # views survive the unlink
        [0, 1, 2, 3]
    """

    __slots__ = (
        "name",
        "key",
        "creator_pid",
        "_segment",
        "_views",
        "_closed",
        "_refs",
        "__weakref__",
    )

    def __init__(
        self,
        arrays: dict[str, "object"],
        prefix: str = "repro",
        key: object = None,
    ):
        if not HAVE_SHARED_MEMORY:  # pragma: no cover - numpy baked in
            raise RuntimeError(
                "shared-memory arenas need numpy and "
                "multiprocessing.shared_memory"
            )
        plan: list[tuple[str, "object", int]] = []
        offset = 0
        for name, arr in arrays.items():
            arr = _np.ascontiguousarray(arr)
            offset = _align(offset)
            plan.append((name, arr, offset))
            offset += arr.nbytes
        size = max(1, offset)
        self.name = f"{prefix}-{os.getpid()}-{secrets.token_hex(4)}"
        self.creator_pid = os.getpid()
        self._segment = _shm.SharedMemory(
            name=self.name, create=True, size=size
        )
        self._closed = False
        views: dict[str, "object"] = {}
        buf = self._segment.buf
        for name, arr, off in plan:
            view = _np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=buf, offset=off
            )
            view[...] = arr
            views[name] = view
        self._views = views
        self.key = key
        self._refs = 1
        _LIVE[self.name] = self
        if key is not None:
            _BY_KEY[key] = self

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def refs(self) -> int:
        """How many holders still own this arena (see :func:`arena_for`)."""
        return self._refs

    def retain(self) -> "SharedArena":
        """Register one more holder; pairs with one extra :meth:`close`."""
        if self._closed:
            raise ValueError(f"arena {self.name} is closed")
        self._refs += 1
        return self

    @property
    def size(self) -> int:
        """Segment size in bytes."""
        return self._segment.size

    def array(self, name: str):
        """The named array, viewing the shared segment zero-copy."""
        return self._views[name]

    def arrays(self) -> dict[str, "object"]:
        """All views, by name."""
        return dict(self._views)

    def close(self, force: bool = False) -> None:
        """Release one holder; unlink when the last one lets go.

        Existing views — in this process and in forked workers — stay
        valid: the kernel frees the memory when the last mapping goes
        away, but the ``/dev/shm`` name is gone immediately, so crashed
        *future* runs cannot observe or accumulate stale segments.
        Keyed arenas (see :func:`arena_for`) may have several holders;
        ``force=True`` unlinks regardless of outstanding refcounts
        (used by the :func:`close_all` atexit hook).
        """
        if self._closed:
            return
        self._refs -= 1
        if self._refs > 0 and not force:
            return
        self._closed = True
        _LIVE.pop(self.name, None)
        if self.key is not None and _BY_KEY.get(self.key) is self:
            del _BY_KEY[self.key]
        if os.getpid() != self.creator_pid:  # pragma: no cover - fork child
            return
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
