"""Reference routing engine: the original dict-based implementation.

This is the seed repository's :mod:`repro.core.routing` kept verbatim
(modulo renames) after the flat-array rewrite.  It exists for two jobs:

* **differential testing** — ``tests/test_differential.py`` asserts the
  flat engine reproduces this engine AS-for-AS on random instances, so
  the rewrite is provably behavior-preserving;
* **benchmarking** — ``benchmarks/bench_routing.py`` measures the flat
  engine's speedup against this engine and records it in
  ``BENCH_routing.json``.

It allocates fresh dicts, heap tuples and a :class:`RouteInfo` per AS
per (attacker, destination) pair, which is exactly the cost profile the
flat engine removes.  Never use it on a hot path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator

from ..topology.graph import ASGraph
from ..topology.relationships import RouteClass
from .attacks import DEFAULT_ATTACK, AttackStrategy, AttackerBaseline
from .deployment import Deployment
from .rank import BASELINE, RankKey, RankModel
from .routing import Reach, RouteInfo


class RefRoutingContext:
    """Preprocessed adjacency for fast repeated routing computations.

    Build once per graph; every entry of ``out_edges[u]`` is
    ``(v, route_class_for_v, v_is_customer_of_u)`` where
    ``route_class_for_v`` is the class v assigns to a route learned from
    u.  The context never mutates the graph.
    """

    __slots__ = ("graph", "out_edges", "asns", "providers_of", "customers_of", "peers_of")

    def __init__(self, graph: ASGraph) -> None:
        self.graph = graph
        self.asns: list[int] = graph.asns
        self.providers_of: dict[int, tuple[int, ...]] = {}
        self.customers_of: dict[int, tuple[int, ...]] = {}
        self.peers_of: dict[int, tuple[int, ...]] = {}
        out: dict[int, list[tuple[int, int, bool]]] = {a: [] for a in self.asns}
        for u in self.asns:
            providers = tuple(sorted(graph.providers(u)))
            peers = tuple(sorted(graph.peers(u)))
            customers = tuple(sorted(graph.customers(u)))
            self.providers_of[u] = providers
            self.customers_of[u] = customers
            self.peers_of[u] = peers
            for p in providers:
                # p sees a route via its customer u as a customer route.
                out[u].append((p, int(RouteClass.CUSTOMER), False))
            for q in peers:
                out[u].append((q, int(RouteClass.PEER), False))
            for c in customers:
                out[u].append((c, int(RouteClass.PROVIDER), True))
        self.out_edges: dict[int, tuple[tuple[int, int, bool], ...]] = {
            u: tuple(edges) for u, edges in out.items()
        }


@dataclass
class RefRoutingOutcome:
    """The stable state for one ``(destination, attacker, S, model)``.

    ASes with no route at all (possible on disconnected inputs) are
    absent from :attr:`routes`.
    """

    destination: int
    attacker: int | None
    deployment: Deployment
    model: RankModel
    routes: dict[int, RouteInfo]
    total_ases: int

    # -- source enumeration ------------------------------------------------
    @property
    def num_sources(self) -> int:
        """|V| minus the destination and (if present) the attacker."""
        return self.total_ases - (2 if self.attacker is not None else 1)

    def is_source(self, asn: int) -> bool:
        return asn != self.destination and asn != self.attacker

    def sources(self) -> Iterator[int]:
        """All fixed ASes other than the roots."""
        for asn in self.routes:
            if self.is_source(asn):
                yield asn

    # -- per-AS predicates ---------------------------------------------------
    def reaches(self, asn: int) -> Reach:
        info = self.routes.get(asn)
        return info.reaches if info is not None else Reach.NONE

    def happy_lower(self, asn: int) -> bool:
        """Happy under adversarial tiebreaking (all BPR routes legit)."""
        return self.reaches(asn) == Reach.DEST

    def happy_upper(self, asn: int) -> bool:
        """Happy under friendly tiebreaking (some BPR route is legit)."""
        return bool(self.reaches(asn) & Reach.DEST)

    def uses_secure_route(self, asn: int) -> bool:
        """True if the AS's best routes are secure (it validates them)."""
        info = self.routes.get(asn)
        return info is not None and info.secure

    # -- aggregate counts -----------------------------------------------------
    def count_happy(self) -> tuple[int, int]:
        """(lower bound, upper bound) on the number of happy sources."""
        lower = 0
        upper = 0
        for asn, info in self.routes.items():
            if not self.is_source(asn):
                continue
            if info.reaches == Reach.DEST:
                lower += 1
                upper += 1
            elif info.reaches & Reach.DEST:
                upper += 1
        return lower, upper

    def count_attacked(self) -> tuple[int, int]:
        """(lower, upper) bounds on sources routing to the attacker."""
        lower = 0
        upper = 0
        for asn, info in self.routes.items():
            if not self.is_source(asn):
                continue
            if info.reaches == Reach.ATTACKER:
                lower += 1
                upper += 1
            elif info.reaches & Reach.ATTACKER:
                upper += 1
        return lower, upper

    def count_secure_sources(self) -> int:
        """Sources whose best routes are secure."""
        return sum(
            1
            for asn, info in self.routes.items()
            if self.is_source(asn) and info.secure
        )

    # -- concrete (deterministic tiebreak) view -----------------------------
    def concrete_endpoint(self, asn: int) -> Reach:
        info = self.routes.get(asn)
        return info.endpoint if info is not None else Reach.NONE

    def concrete_path(self, asn: int) -> tuple[int, ...]:
        """The physical AS path under the deterministic tiebreak.

        For attacked routes the path ends at the attacker (where traffic
        actually terminates), not at the claimed destination.
        """
        if asn not in self.routes:
            return ()
        path = [asn]
        seen = {asn}
        cur = asn
        while True:
            info = self.routes[cur]
            if info.choice is None:
                return tuple(path)
            cur = info.choice
            if cur in seen:  # pragma: no cover - defended against, impossible
                raise RuntimeError(f"routing loop through AS {cur}")
            seen.add(cur)
            path.append(cur)


@dataclass
class _Candidate:
    """Best-so-far (pre-fixing) routes of an AS, merged across next hops."""

    key: RankKey
    route_class: int
    length: int
    next_hops: set[int] = field(default_factory=set)
    reaches: Reach = Reach.NONE
    wire_in: bool = True


def ref_compute_routing_outcome(
    topology: ASGraph | RefRoutingContext,
    destination: int,
    attacker: int | None = None,
    deployment: Deployment | None = None,
    model: RankModel = BASELINE,
    attack: AttackStrategy = DEFAULT_ATTACK,
) -> RefRoutingOutcome:
    """Compute the unique stable routing state (Theorem 2.1).

    Args:
        topology: the AS graph, or a prebuilt :class:`RefRoutingContext`
            (build one when calling repeatedly on the same graph).
        destination: the victim AS ``d`` originating the prefix.
        attacker: the attacking AS ``m``; None for normal conditions.
        deployment: the secure set ``S``; defaults to ``S = ∅``.
        model: the routing-policy model; defaults to the baseline
            (origin authentication only).
        attack: the attacker strategy (:mod:`repro.core.attacks`);
            defaults to the paper's Section 3.1 one-hop hijack — ``m``
            announces the bogus path ``"m d"`` via legacy BGP to all
            its neighbors.

    Returns:
        A :class:`RefRoutingOutcome`.
    """
    context = topology if isinstance(topology, RefRoutingContext) else RefRoutingContext(topology)
    deployment = deployment or Deployment.empty()
    graph = context.graph
    if destination not in graph:
        raise ValueError(f"destination AS {destination} not in graph")
    if attacker is not None:
        if attacker not in graph:
            raise ValueError(f"attacker AS {attacker} not in graph")
        if attacker == destination:
            raise ValueError("attacker and destination must differ")

    signing = deployment.signing_members
    ranking = deployment.ranking_members
    out_edges = context.out_edges
    key_of = model.key

    dest_signed = destination in signing
    resolved = None
    if attacker is not None:
        baseline = None
        if attack.needs_baseline:
            base = ref_compute_routing_outcome(
                context, destination, None, deployment, model
            )
            base_info = base.routes.get(attacker)
            baseline = (
                AttackerBaseline(
                    has_route=True,
                    length=base_info.length,
                    wire_secure=base_info.wire_secure,
                )
                if base_info is not None
                else AttackerBaseline(has_route=False)
            )
        resolved = attack.resolve(dest_signed=dest_signed, baseline=baseline)

    routes: dict[int, RouteInfo] = {}
    candidates: dict[int, _Candidate] = {}
    heap: list[tuple[RankKey, int]] = []

    routes[destination] = RouteInfo(
        route_class=None,
        length=0,
        key=None,
        next_hops=(),
        reaches=Reach.DEST,
        secure=dest_signed,
        wire_secure=dest_signed,
        choice=None,
        endpoint=Reach.DEST,
    )
    if attacker is not None:
        att_reach = Reach.ATTACKER if resolved.active else Reach.NONE
        routes[attacker] = RouteInfo(
            route_class=None,
            length=resolved.length,  # the claimed path (default: "m d")
            key=None,
            next_hops=(),
            reaches=att_reach,
            secure=False,
            # valid-looking attributes count as wire security for
            # recipients; the default legacy-BGP lie carries none.
            wire_secure=resolved.wire,
            choice=None,
            endpoint=att_reach,
        )

    def relax_from(u: int, info: RouteInfo, export_all: bool | None = None) -> None:
        """Offer u's fixed route to every neighbor Ex allows."""
        is_origin = info.key is None
        if export_all is None:
            exports_everywhere = is_origin or info.route_class is RouteClass.CUSTOMER
        else:
            exports_everywhere = export_all  # the attacker's export scope
        length = info.length + 1
        wire = info.wire_secure
        reaches = info.reaches
        for v, v_class, v_is_customer in out_edges[u]:
            if v in routes:
                continue
            if not (exports_everywhere or v_is_customer):
                continue
            secure_for_v = wire and v in ranking
            key = key_of(RouteClass(v_class), length, secure_for_v)
            cand = candidates.get(v)
            if cand is None or key < cand.key:
                cand = _Candidate(
                    key=key, route_class=v_class, length=length, wire_in=wire
                )
                cand.next_hops.add(u)
                cand.reaches = reaches
                candidates[v] = cand
                heapq.heappush(heap, (key, v))
            elif key == cand.key:
                cand.next_hops.add(u)
                cand.reaches |= reaches
                cand.wire_in = cand.wire_in and wire

    relax_from(destination, routes[destination])
    if attacker is not None and resolved.active:
        relax_from(attacker, routes[attacker], export_all=resolved.export_all)

    while heap:
        key, v = heapq.heappop(heap)
        if v in routes:
            continue
        cand = candidates[v]
        if key != cand.key:
            continue  # stale heap entry; a better candidate exists
        choice = min(cand.next_hops)
        info = RouteInfo(
            route_class=RouteClass(cand.route_class),
            length=cand.length,
            key=cand.key,
            next_hops=tuple(sorted(cand.next_hops)),
            reaches=cand.reaches,
            # "uses a secure route" is only meaningful when the model
            # ranks security: a baseline-model AS treats every route as
            # insecure even if the announcement arrived signed.
            secure=cand.wire_in and v in ranking and model.uses_security,
            wire_secure=cand.wire_in and v in signing,
            choice=choice,
            endpoint=routes[choice].endpoint,
        )
        routes[v] = info
        del candidates[v]
        relax_from(v, info)

    return RefRoutingOutcome(
        destination=destination,
        attacker=attacker,
        deployment=deployment,
        model=model,
        routes=routes,
        total_ases=len(context.asns),
    )


def ref_normal_conditions(
    topology: ASGraph | RefRoutingContext,
    destination: int,
    deployment: Deployment | None = None,
    model: RankModel = BASELINE,
) -> RefRoutingOutcome:
    """Routing to ``destination`` when nobody attacks (m = ∅)."""
    return ref_compute_routing_outcome(
        topology, destination, attacker=None, deployment=deployment, model=model
    )
