"""Compressed numpy delta kernel for :class:`~repro.core.routing.DestinationSweep`.

:func:`delta_np` is the vectorized twin of
:meth:`DestinationSweep._delta_pure`: it re-fixes one attacker delta (or
one rollout advance) bit-identically, but runs the bucket-Dijkstra of
:meth:`RoutingContext._run_np` over a *compressed* index space holding
only the dirty dependency closure plus the baseline-unreachable nodes,
with the clean fixed region acting as a frozen boundary of offer rows.

The pass never mutates the python scratch buffers until (and unless) the
caller asked for the full state: its closure sweep, wave kernel and
count swap all work on the sweep's numpy baseline snapshot and
per-delta compressed scratch.  That makes the two hybrid-policy escapes
nearly free — :class:`~repro.core.routing._DeltaSmall` (region below the
pure loop's break-even) and :class:`~repro.core.routing._DeltaOversize`
(region past the dense fall-back's break-even) both just clear the
dirty flags they set and raise.

Dynamic invalidation (a re-fixed route beating — or insecurely tying —
a clean boundary baseline) is handled by *wave restarts*: the compressed
sweep runs to completion, every boundary violation's closure is folded
into the region, and the wave restarts on the grown index space.  The
stable state is unique given the frozen boundary, so a superset region
converges to the same bit-identical result the pure kernel reaches by
invalidating mid-heap; restarts are rare because violations only arise
from attacker-shortened paths crossing the closure's rim.
"""

from __future__ import annotations

import heapq

import numpy as np

from .routing import (
    _IDX_MASK,
    _INF,
    _NP_INF,
    PACK_SHIFT,
    SecurityModel,
    _DeltaOversize,
    _DeltaSmall,
    _np_key_fn,
)

_I64 = np.int64


def delta_np(sweep, att_i, extra_resets, res, need_state, budget, small):
    """One vectorized delta; returns ``(counts, touched)``.

    Raises :class:`_DeltaSmall` when the dirty closure lands below
    ``small`` (dirty flags cleared, nothing mutated) and
    :class:`_DeltaOversize` when it outgrows ``budget`` (likewise
    self-cleaned) — the dispatcher in :meth:`DestinationSweep._delta`
    turns those into the pure-loop and dense fall-backs.
    """
    ctx = sweep.ctx
    n = ctx.n
    base = sweep._np_baseline()
    b_fixed = base["fixed"]
    b_key = base["key"]
    b_cls = base["cls"]
    b_len = base["len"]
    b_reach = base["reach"]
    b_wire = base["wire"]
    b_sec = base["sec"]
    b_choice = base["choice"]
    b_endp = base["endp"]
    dep_start = base["dep_start"]
    dep_v = base["dep_v"]
    nhcnt = base["nhcnt"]
    bwirecnt = base["bwirecnt"]
    deadcnt = base["deadcnt"]
    deadwire = base["deadwire"]
    dirty = np.frombuffer(sweep._dirty, dtype=np.uint8)
    start, node, cls_e, cf_b, _esrc = ctx._np_adjacency()
    rank_i = np.frombuffer(sweep._ranking, dtype=np.uint8).astype(_I64)
    sign_i = np.frombuffer(sweep._signing, dtype=np.uint8).astype(_I64)
    model = sweep.model
    key_of = _np_key_fn(model)
    uses_sec = model.uses_security
    placement = model.model
    if placement is SecurityModel.FIRST:
        insec_shift = 2 * PACK_SHIFT
    elif placement is SecurityModel.SECOND:
        insec_shift = PACK_SHIFT
    else:
        insec_shift = -1
    dest_i = sweep._dest_i
    dest_signed = 1 if sweep._signing[dest_i] else 0
    advance = extra_resets is not None
    if att_i >= 0:
        att_active = res.active
        att_ln = res.length + 1
        att_wire = 1 if res.wire else 0
        att_exp = res.export_all
    else:
        att_active = False
        att_ln = att_wire = 0
        att_exp = False

    empty = np.empty(0, _I64)
    touched_parts: list = []
    hard_parts: list = []
    prune_parts: list = []
    tot = 0
    hard_tot = 0

    def cleanup() -> None:
        """Undo the only global mutations phase A makes: dirty flags
        and the dead-member accumulators (every written entry belongs
        to a flagged node)."""
        for part in touched_parts:
            dirty[part] = 0
            deadcnt[part] = 0
            deadwire[part] = 0

    def closure(seeds) -> None:
        """Vectorized BFS twin of the pure kernel's ``reset_closure``:
        hard-reset ``seeds`` and every dependent whose record cannot
        survive; prune (``dirty = 2``) dependents that keep a live,
        wire-preserving BPR subset.  Classification is evaluated from
        the dead-member accumulators, which makes it order-independent
        (a layer's aggregate equals the pure DFS's last per-death
        check, and both conditions are monotone in the dead set)."""
        nonlocal tot, hard_tot
        seeds = seeds[dirty[seeds] != 1]
        if not seeds.size:
            return
        layer = np.unique(seeds)
        while layer.size:
            fresh = layer[dirty[layer] == 0]
            if fresh.size:
                touched_parts.append(fresh)
                tot += int(fresh.size)
            dirty[layer] = 1
            hard_parts.append(layer)
            hard_tot += int(layer.size)
            # Cede to the dense pass the moment the cost estimate
            # crosses the budget: an oversize region's full closure can
            # be several times the budget, and walking the rest of it
            # would just be thrown away.
            if budget is not None and hard_tot + (tot >> 2) > budget:
                cleanup()
                raise _DeltaOversize([], False)
            s = dep_start[layer]
            cnt = dep_start[layer + 1] - s
            tote = int(cnt.sum())
            if not tote:
                break
            cend = np.cumsum(cnt)
            eidx = np.repeat(s - (cend - cnt), cnt) + np.arange(tote)
            ys = dep_v[eidx]
            xs = np.repeat(layer, cnt)
            m = dirty[ys] != 1
            ys = ys[m]
            if not ys.size:
                break
            xs = xs[m]
            np.add.at(deadcnt, ys, 1)
            np.add.at(deadwire, ys, b_wire[xs])
            cand = np.unique(ys)
            live = nhcnt[cand] - deadcnt[cand]
            hard = live == 0
            promo = (
                ~hard
                & (sign_i[cand] != 0)
                & (b_wire[cand] == 0)
                & (bwirecnt[cand] - deadwire[cand] == live)
            )
            hp = hard | promo
            pruned = cand[~hp]
            if pruned.size:
                fresh = pruned[dirty[pruned] == 0]
                if fresh.size:
                    dirty[fresh] = 2
                    touched_parts.append(fresh)
                    prune_parts.append(fresh)
                    tot += int(fresh.size)
            layer = cand[hp]

    # ------------------------------------------------------------------
    # Phase A: region discovery (the closures double as the hybrid
    # policy's size estimate — nothing is mutated beyond dirty flags).
    tie_w_parts: list = []
    tie_u_parts: list = []
    if not advance:
        closure(np.array([att_i], dtype=_I64))
        # The attacker root's claimed announcement versus each clean
        # fixed neighbor's baseline (the pure kernel's step 3): beaten
        # or insecurely-tied baselines seed further closures, exact
        # wire-preserving ties go to the soft phase.
        if att_active:
            sl = slice(start[att_i], start[att_i + 1])
            w = node[sl]
            vcls = cls_e[sl]
            scope = cf_b[sl] | att_exp
            m = scope & (dirty[w] != 1) & b_fixed[w] & (w != dest_i)
            wm = w[m]
            if wm.size:
                k = key_of(
                    vcls[m],
                    np.full(wm.size, att_ln, dtype=_I64),
                    rank_i[wm] * att_wire,
                )
                cur = b_key[wm]
                beat = (k < cur) | (
                    (k == cur) & (att_wire == 0) & (b_wire[wm] == 1)
                )
                tie = (k == cur) & ~beat
                if tie.any():
                    tie_w_parts.append(wm[tie])
                    tie_u_parts.append(
                        np.full(int(tie.sum()), att_i, dtype=_I64)
                    )
                pending = wm[beat]
                if pending.size:
                    closure(pending)
    else:
        seeds = np.asarray(list(extra_resets), dtype=_I64)
        if seeds.size:
            closure(seeds)

    if small is not None and tot < small:
        cleanup()
        raise _DeltaSmall(tot)
    # The dense-cede signal is an estimate of what this kernel will
    # actually pay: the hard region drives the compressed waves, and
    # pruned/tie nodes only cost the (python) soft phase a heap pop
    # each — roughly a quarter of a re-waved node.  ``budget`` is the
    # dense pass's cost scale (a small fraction of ``n``), so ceding
    # whenever the estimate crosses it keeps the kernel to the regime
    # where it beats one full ``_run_np`` pass.
    if budget is not None and hard_tot + (tot >> 2) > budget:
        cleanup()
        raise _DeltaOversize([], False)

    # ------------------------------------------------------------------
    # Phase B: compressed wave kernel over loc = hard resets (minus the
    # attacker root) plus every baseline-unreachable node.
    inv = ctx._np_inv
    if inv is None:
        inv = ctx._np_inv = np.full(n, -1, dtype=_I64)
    unreach = np.flatnonzero(~b_fixed)

    def rebuild_loc():
        lc = np.unique(np.concatenate(hard_parts + [unreach, empty]))
        if att_i >= 0:
            lc = lc[lc != att_i]
        return lc

    wave = _run_waves(
        n, rebuild_loc, inv, closure, cleanup, budget, lambda: hard_tot + (tot >> 2),
        tie_w_parts, tie_u_parts,
        base, start, node, cls_e, cf_b, rank_i, sign_i,
        key_of, uses_sec, insec_shift, dest_i, dest_signed,
        att_i, att_active, att_ln, att_wire, att_exp,
    )
    (loc, fixed_c, key_c, cls_c, len_c, reach_c, wire_c, sec_c,
     choice_c, endp_glob, mem_u, mem_v) = wave

    # Baseline-unreachable nodes that the delta fixed are first-touched
    # exactly like the pure kernel's pop step.
    newfix = loc[fixed_c & ~b_fixed[loc]]
    if newfix.size:
        dirty[newfix] = 1
        touched_parts.append(newfix)
        tot += int(newfix.size)

    # ------------------------------------------------------------------
    # Phase C: soft phase (deferred knife-edge ties + pruned BPR sets).
    extra_touched: list = []
    soft_nh: dict = {}
    have_soft = bool(tie_w_parts) or bool(prune_parts)
    reach_glob = choice_glob = None
    if have_soft:
        reach_glob = b_reach.copy()
        choice_glob = b_choice.copy()
        fx = np.flatnonzero(fixed_c)
        gl = loc[fx]
        reach_glob[gl] = reach_c[fx]
        choice_glob[gl] = choice_c[fx]
        reach_glob[dest_i] = 1
        if att_i >= 0:
            reach_glob[att_i] = 2 if att_active else 0
        _soft_phase(
            sweep, dirty, inv, b_fixed, b_key,
            reach_glob, choice_glob, endp_glob,
            key_c, reach_c, choice_c, dep_start, dep_v,
            mem_u, mem_v, tie_w_parts, tie_u_parts, prune_parts,
            soft_nh, extra_touched,
        )

    # ------------------------------------------------------------------
    # Phase D: O(touched) vectorized count swap (the pure kernel's
    # exact subtraction/addition, batched).
    if extra_touched:
        touched_parts.append(np.asarray(extra_touched, dtype=_I64))
    T = (
        np.concatenate(touched_parts)
        if touched_parts
        else empty
    )
    lo, up, alo, aup, sec_n, nfx = sweep._b_counts
    root_att = sweep._root_att
    if T.size:
        if reach_glob is not None:
            out_reach = reach_glob[T]
        else:
            out_reach = b_reach[T]
        if loc.size:
            il = inv[T]
            in_loc = il >= 0
            ilc = np.where(in_loc, il, 0)
            fixed_new = np.where(in_loc, fixed_c[ilc], b_fixed[T])
            reach_new = np.where(in_loc, reach_c[ilc], out_reach)
            sec_new = np.where(in_loc, sec_c[ilc], b_sec[T])
        else:
            fixed_new = b_fixed[T]
            reach_new = out_reach
            sec_new = b_sec[T]
        m1 = (T != root_att) & b_fixed[T]
        r1 = b_reach[T[m1]]
        lo -= int((r1 == 1).sum())
        alo -= int((r1 == 2).sum())
        up -= int((r1 != 2).sum())
        aup -= int((r1 != 1).sum())
        sec_n -= int(b_sec[T[m1]].sum())
        nfx -= int(m1.sum())
        m2 = (T != att_i) & fixed_new
        r2 = reach_new[m2]
        lo += int((r2 == 1).sum())
        alo += int((r2 == 2).sum())
        up += int((r2 != 2).sum())
        aup += int((r2 != 1).sum())
        sec_n += int(sec_new[m2].sum())
        nfx += int(m2.sum())
    counts = (int(lo), int(up), int(alo), int(aup), int(sec_n), int(nfx))

    # ------------------------------------------------------------------
    # Epilogue: the count-only path never touched the python scratch —
    # clear the flags and tell _restore there is nothing to undo.
    touched = T.tolist()
    if not need_state:
        inv[loc] = -1
        cleanup()
        sweep._needs_restore = False
        return counts, touched

    _writeback(
        sweep, loc, fixed_c, key_c, cls_c, len_c, reach_c, wire_c,
        sec_c, choice_c, endp_glob, mem_u, mem_v, dirty, T,
        reach_glob, choice_glob, soft_nh, att_i, att_active, att_wire,
        res, advance,
    )
    inv[loc] = -1
    deadcnt[T] = 0
    deadwire[T] = 0
    return counts, touched

def _run_waves(
    n, rebuild_loc, inv, closure, cleanup, budget, tot_fn,
    tie_w_parts, tie_u_parts, base, start, node, cls_e, cf_b,
    rank_i, sign_i, key_of, uses_sec, insec_shift, dest_i, dest_signed,
    att_i, att_active, att_ln, att_wire, att_exp,
):
    """Run the compressed bucket kernel, restarting on boundary
    violations, until the re-fixed region is stable against the frozen
    boundary.  Returns the final wave's compressed state plus the
    global next-hop membership pairs of the re-fixed nodes."""
    b_fixed = base["fixed"]
    b_key = base["key"]
    b_cls = base["cls"]
    b_len = base["len"]
    b_reach = base["reach"]
    b_wire = base["wire"]
    b_endp = base["endp"]
    loc = rebuild_loc()
    empty = np.empty(0, _I64)
    while True:
        L = int(loc.size)
        inv[loc] = np.arange(L, dtype=_I64)
        rank_loc = rank_i[loc]
        sign_loc = sign_i[loc]
        # Sub-CSR over the region's rows: each edge serves offers in
        # (boundary rows, tgt outside loc) and out (violation scan).
        if L:
            s = start[loc]
            cnt = start[loc + 1] - s
            tote = int(cnt.sum())
        else:
            tote = 0
        if tote:
            cend = np.cumsum(cnt)
            eidx = np.repeat(s - (cend - cnt), cnt) + np.arange(tote)
            rsrc = np.repeat(np.arange(L, dtype=_I64), cnt)
            tgt = node[eidx]
            ecls = cls_e[eidx]
            ecf = cf_b[eidx]
            tl = inv[tgt]
            internal = tl >= 0
            isrc = rsrc[internal]
            itgt = tl[internal]
            iecls = ecls[internal]
            iecf = ecf[internal]
            bm = ~internal
            bu0 = tgt[bm]
            bx0 = rsrc[bm]
            bcls0 = ecls[bm]
            bcf0 = ecf[bm]
        else:
            isrc = itgt = iecls = empty
            iecf = np.empty(0, np.bool_)
            bu0 = bx0 = bcls0 = empty
            bcf0 = np.empty(0, np.bool_)

        # Boundary offer rows INTO the region (the pure kernel's
        # gather(), batched): clean fixed neighbors with their baseline
        # records, the destination and attacker with root semantics.
        is_dest = bu0 == dest_i
        if att_i >= 0:
            is_att = bu0 == att_i
        else:
            is_att = np.zeros(bu0.size, np.bool_)
        legal = (
            is_dest
            | (is_att & att_active & (att_exp | (bcls0 == 0)))
            | (
                ~is_dest & ~is_att & b_fixed[bu0]
                & ((b_cls[bu0] == 0) | (bcls0 == 0))
            )
        )
        bu = bu0[legal]
        bx = bx0[legal]
        bucls = bcls0[legal]
        d2 = is_dest[legal]
        a2 = is_att[legal]
        ln_b = np.where(d2, 1, np.where(a2, att_ln, b_len[bu] + 1))
        wi_b = np.where(d2, dest_signed, np.where(a2, att_wire, b_wire[bu]))
        re_b = np.where(d2, 1, np.where(a2, 2, b_reach[bu]))
        icls_b = 2 - bucls
        kb = key_of(icls_b, ln_b, wi_b & rank_loc[bx])

        keyq = np.full(L, _NP_INF, _I64)
        key_c = np.full(L, _NP_INF, _I64)
        cls_c = np.zeros(L, _I64)
        len_c = np.zeros(L, _I64)
        reach_c = np.zeros(L, _I64)
        wire_c = np.zeros(L, _I64)
        sec_c = np.zeros(L, _I64)
        choice_c = np.full(L, -1, _I64)
        chacc = np.full(L, n, _I64)
        endp_c = np.zeros(L, _I64)
        fixed_c = np.zeros(L, np.bool_)
        forder_c = np.zeros(L, _I64)
        endp_glob = b_endp.copy()
        endp_glob[dest_i] = 1
        if att_i >= 0:
            endp_glob[att_i] = 2 if att_active else 0
        icnt = np.bincount(isrc, minlength=L) if L else np.zeros(0, _I64)
        istart = np.zeros(L + 1, _I64)
        np.cumsum(icnt, out=istart[1:])

        def apply(xs, k, srcg, wi, re, vcls, ln):
            """One batch of offers, exactly _run_np.relax's accumulator
            semantics (improvement resets, tie accumulation)."""
            old = keyq[xs]
            np.minimum.at(keyq, xs, k)
            new = keyq[xs]
            improved = new < old
            if improved.any():
                iv = xs[improved]
                reach_c[iv] = 0
                wire_c[iv] = 1
                chacc[iv] = n
            tie = k == new
            tv = xs[tie]
            cls_c[tv] = vcls[tie]
            len_c[tv] = ln[tie]
            np.bitwise_or.at(reach_c, tv, re[tie])
            np.minimum.at(wire_c, tv, wi[tie])
            np.minimum.at(chacc, tv, srcg[tie])

        if bu.size:
            apply(bx, kb, bu, wi_b, re_b, icls_b, ln_b)

        def relax(B, exp_src, ln_src, wire_src, reach_src):
            s2 = istart[B]
            c2 = istart[B + 1] - s2
            tot2 = int(c2.sum())
            if not tot2:
                return
            cend2 = np.cumsum(c2)
            eix = np.repeat(s2 - (cend2 - c2), c2) + np.arange(tot2)
            rep = np.repeat(np.arange(B.size), c2)
            tv = itgt[eix]
            ok = (exp_src[rep] | iecf[eix]) & ~fixed_c[tv]
            if not ok.any():
                return
            eix = eix[ok]
            tv = tv[ok]
            rep = rep[ok]
            vcls = iecls[eix]
            ln = ln_src[rep]
            wi = wire_src[rep]
            k = key_of(vcls, ln, wi & rank_loc[tv])
            apply(tv, k, loc[B][rep], wi, reach_src[rep], vcls, ln)

        rounds = 0
        while L:
            gmin = int(keyq.min())
            if gmin >= _NP_INF:
                break
            B = np.flatnonzero(keyq == gmin)
            if insec_shift >= 0 and (gmin >> insec_shift) & 1:
                flips = np.flatnonzero(wire_c[B] & sign_loc[B])
                if len(flips):
                    B = B[: max(int(flips[0]), 1)]
            rounds += 1
            keyq[B] = _NP_INF
            key_c[B] = gmin
            fixed_c[B] = True
            forder_c[B] = rounds
            ch = chacc[B]
            choice_c[B] = ch
            ev = endp_glob[ch]
            endp_c[B] = ev
            endp_glob[loc[B]] = ev
            w = wire_c[B]
            if uses_sec:
                sec_c[B] = w & rank_loc[B]
            wire_c[B] = w & sign_loc[B]
            relax(B, cls_c[B] == 0, len_c[B] + 1, wire_c[B], reach_c[B])

        # Boundary scan OUT of the region: a re-fixed record beating a
        # clean baseline (or insecurely tying it) invalidates the
        # target — fold its closure in and restart; an exact
        # wire-preserving tie is a deferred soft-phase membership add.
        vm = (
            fixed_c[bx0] & b_fixed[bu0] & (bu0 != dest_i)
            & ((cls_c[bx0] == 0) | bcf0)
        )
        if att_i >= 0:
            vm &= bu0 != att_i
        vsrc = bx0[vm]
        vt = bu0[vm]
        if vt.size:
            k2 = key_of(
                bcls0[vm],
                len_c[vsrc] + 1,
                wire_c[vsrc] & rank_i[vt],
            )
            cur = b_key[vt]
            viol = (k2 < cur) | (
                (k2 == cur) & (wire_c[vsrc] == 0) & (b_wire[vt] == 1)
            )
            if viol.any():
                inv[loc] = -1
                closure(np.unique(vt[viol]))
                if budget is not None and tot_fn() > budget:
                    cleanup()
                    raise _DeltaOversize([], False)
                loc = rebuild_loc()
                continue
            tie2 = k2 == cur
            if tie2.any():
                tie_w_parts.append(vt[tie2])
                tie_u_parts.append(loc[vsrc[tie2]])

        # Final wave: global next-hop membership pairs of the re-fixed
        # nodes (boundary members by key match; internal members also
        # need the strict fix-order test — see _materialize_nhops).
        mb = fixed_c[bx] & (kb == key_c[bx])
        mem_u_b = bu[mb]
        mem_v_b = loc[bx[mb]]
        mi = (
            fixed_c[isrc] & fixed_c[itgt]
            & ((cls_c[isrc] == 0) | iecf)
            & (forder_c[isrc] < forder_c[itgt])
        )
        ii = np.flatnonzero(mi)
        if ii.size:
            k3 = key_of(
                iecls[ii],
                len_c[isrc[ii]] + 1,
                wire_c[isrc[ii]] & rank_loc[itgt[ii]],
            )
            ii = ii[k3 == key_c[itgt[ii]]]
        mem_u = np.concatenate([mem_u_b, loc[isrc[ii]]])
        mem_v = np.concatenate([mem_v_b, loc[itgt[ii]]])
        return (
            loc, fixed_c, key_c, cls_c, len_c, reach_c, wire_c, sec_c,
            choice_c, endp_glob, mem_u, mem_v,
        )


def _soft_phase(
    sweep, dirty, inv, b_fixed, b_key, reach_glob, choice_glob,
    endp_glob, key_c, reach_c, choice_c, dep_start, dep_v,
    mem_u, mem_v, tie_w_parts, tie_u_parts, prune_parts,
    soft_nh, extra_touched,
):
    """The pure kernel's step 7, against overlays: knife-edge ties and
    pruned BPR sets shift only reach/choice/endpoint, propagated
    upward in key order through the dependency lists.  Scalar loop —
    the worklist is tiny relative to the region."""
    b_nhops = sweep._b_nhops
    push = heapq.heappush
    pop = heapq.heappop
    work: list = []
    ss = np.searchsorted
    if mem_u.size:
        o1 = np.argsort(mem_u, kind="stable")
        cu = mem_u[o1]
        cv = mem_v[o1]
        o2 = np.argsort(mem_v, kind="stable")
        mu2 = mem_u[o2]
        mv2 = mem_v[o2]
    else:
        cu = cv = mu2 = mv2 = mem_u
    for part in prune_parts:
        for x in part.tolist():
            if dirty[x] != 2:
                continue  # promoted to a hard reset later
            soft_nh[x] = [u for u in b_nhops[x] if dirty[u] != 1]
            push(work, (int(b_key[x]) << PACK_SHIFT) | x)
    for wp, upart in zip(tie_w_parts, tie_u_parts):
        for w, u in zip(wp.tolist(), upart.tolist()):
            if dirty[w] == 1:
                continue  # hard-invalidated; the tie was re-collected
            lst = soft_nh.get(w)
            if lst is None:
                dirty[w] = 2
                extra_touched.append(w)
                lst = list(b_nhops[w])
                soft_nh[w] = lst
            lst.append(u)
            push(work, (int(b_key[w]) << PACK_SHIFT) | w)
    while work:
        x = pop(work) & _IDX_MASK
        if dirty[x] == 1:
            lo_ = ss(mv2, x, "left")
            hi_ = ss(mv2, x, "right")
            members = mu2[lo_:hi_].tolist()
        else:
            members = soft_nh.get(x)
            if members is None:
                members = b_nhops[x]
        if not members:
            continue
        r = 0
        for u in members:
            r |= int(reach_glob[u])
        ch = members[0] if len(members) == 1 else min(members)
        ep = int(endp_glob[ch])
        if (
            r == int(reach_glob[x])
            and ep == int(endp_glob[x])
            and ch == int(choice_glob[x])
        ):
            continue
        if dirty[x] == 0:
            dirty[x] = 2
            extra_touched.append(x)
        reach_glob[x] = r
        choice_glob[x] = ch
        endp_glob[x] = ep
        li = int(inv[x])
        if li >= 0 and dirty[x] == 1:
            reach_c[li] = r
            choice_c[li] = ch
        for y in dep_v[dep_start[x]:dep_start[x + 1]].tolist():
            if dirty[y] != 1 and b_fixed[y]:
                push(work, (int(b_key[y]) << PACK_SHIFT) | y)
        lo_ = ss(cu, x, "left")
        hi_ = ss(cu, x, "right")
        for y in cv[lo_:hi_].tolist():
            push(work, (int(key_c[inv[y]]) << PACK_SHIFT) | y)


def _writeback(
    sweep, loc, fixed_c, key_c, cls_c, len_c, reach_c, wire_c,
    sec_c, choice_c, endp_glob, mem_u, mem_v, dirty, T,
    reach_glob, choice_glob, soft_nh, att_i, att_active, att_wire,
    res, advance,
):
    """Scatter the re-fixed state into the python scratch buffers —
    the same values the pure kernel leaves there, so snapshots and
    rollout commits read bit-identical state."""
    ctx = sweep.ctx
    fixed = ctx._fixed
    key_l = ctx._key
    cls_b = ctx._cls
    len_l = ctx._len
    reach_b = ctx._reach
    wire_b = ctx._wire
    sec_b = ctx._sec
    choice_l = ctx._choice
    endp_b = ctx._endpoint
    nhops = ctx._nhops
    n = ctx.n
    nh_map: dict = {}
    if mem_v.size:
        order = np.argsort(mem_v * n + mem_u)
        sv = mem_v[order]
        ul = mem_u[order].tolist()
        bounds = np.flatnonzero(np.diff(sv)).tolist()
        starts = [0, *(b + 1 for b in bounds)]
        ends = [*bounds, len(ul) - 1]
        heads = sv[np.asarray(starts, dtype=_I64)].tolist()
        for vv, a, b in zip(heads, starts, ends):
            nh_map[vv] = ul[a:b + 1]
    fx = np.flatnonzero(fixed_c)
    gl = loc[fx]
    for x, k, c, ln, r, wi, se, ch, ep in zip(
        gl.tolist(), key_c[fx].tolist(), cls_c[fx].tolist(),
        len_c[fx].tolist(), reach_c[fx].tolist(), wire_c[fx].tolist(),
        sec_c[fx].tolist(), choice_c[fx].tolist(),
        endp_glob[gl].tolist(),
    ):
        fixed[x] = 1
        key_l[x] = k
        cls_b[x] = c
        len_l[x] = ln
        reach_b[x] = r
        wire_b[x] = wi
        sec_b[x] = se
        choice_l[x] = ch
        endp_b[x] = ep
        nhops[x] = nh_map.get(x)
    for x in loc[~fixed_c].tolist():
        fixed[x] = 0
        key_l[x] = _INF
        sec_b[x] = 0
        nhops[x] = None
    if reach_glob is not None:
        for x in T[dirty[T] == 2].tolist():
            reach_b[x] = int(reach_glob[x])
            choice_l[x] = int(choice_glob[x])
            endp_b[x] = int(endp_glob[x])
            lst = soft_nh.get(x)
            if lst is not None:
                nhops[x] = lst
    if att_i >= 0 and not advance:
        fixed[att_i] = 1
        key_l[att_i] = _INF
        sec_b[att_i] = 0
        len_l[att_i] = res.length
        reach_b[att_i] = 2 if att_active else 0
        endp_b[att_i] = 2 if att_active else 0
        wire_b[att_i] = att_wire
        choice_l[att_i] = -1
        nhops[att_i] = None
